package mathx

import (
	"fmt"
	"math"
	"strings"
)

// Mat is a small dense row-major matrix. The dynamic-system models need only
// tiny matrices (the 4x4 state transition Φ and 4x2 noise gain Γ of the
// bearings-only model), so Mat favors clarity and determinism over BLAS-style
// performance tricks.
type Mat struct {
	Rows, Cols int
	Data       []float64 // len = Rows*Cols, row-major
}

// NewMat returns a zero matrix with the given shape.
func NewMat(rows, cols int) *Mat {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("mathx: NewMat invalid shape %dx%d", rows, cols))
	}
	return &Mat{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// MatFromRows builds a matrix from row slices; all rows must have equal length.
func MatFromRows(rows ...[]float64) *Mat {
	if len(rows) == 0 {
		panic("mathx: MatFromRows needs at least one row")
	}
	m := NewMat(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic("mathx: MatFromRows ragged rows")
		}
		copy(m.Data[i*m.Cols:(i+1)*m.Cols], r)
	}
	return m
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Mat {
	m := NewMat(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Diag returns a square matrix with d on the diagonal.
func Diag(d ...float64) *Mat {
	m := NewMat(len(d), len(d))
	for i, v := range d {
		m.Set(i, i, v)
	}
	return m
}

// At returns element (i, j).
func (m *Mat) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Mat) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy of m.
func (m *Mat) Clone() *Mat {
	c := NewMat(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// T returns the transpose of m as a new matrix.
func (m *Mat) T() *Mat {
	t := NewMat(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Add returns m + n as a new matrix.
func (m *Mat) Add(n *Mat) *Mat {
	if m.Rows != n.Rows || m.Cols != n.Cols {
		panic("mathx: Add shape mismatch")
	}
	out := NewMat(m.Rows, m.Cols)
	for i := range m.Data {
		out.Data[i] = m.Data[i] + n.Data[i]
	}
	return out
}

// Sub returns m - n as a new matrix.
func (m *Mat) Sub(n *Mat) *Mat {
	if m.Rows != n.Rows || m.Cols != n.Cols {
		panic("mathx: Sub shape mismatch")
	}
	out := NewMat(m.Rows, m.Cols)
	for i := range m.Data {
		out.Data[i] = m.Data[i] - n.Data[i]
	}
	return out
}

// Scale returns s*m as a new matrix.
func (m *Mat) Scale(s float64) *Mat {
	out := NewMat(m.Rows, m.Cols)
	for i := range m.Data {
		out.Data[i] = s * m.Data[i]
	}
	return out
}

// Mul returns the matrix product m*n as a new matrix.
func (m *Mat) Mul(n *Mat) *Mat {
	if m.Cols != n.Rows {
		panic(fmt.Sprintf("mathx: Mul shape mismatch %dx%d * %dx%d", m.Rows, m.Cols, n.Rows, n.Cols))
	}
	out := NewMat(m.Rows, n.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			for j := 0; j < n.Cols; j++ {
				out.Data[i*out.Cols+j] += a * n.At(k, j)
			}
		}
	}
	return out
}

// MulVec returns the matrix-vector product m*v.
func (m *Mat) MulVec(v []float64) []float64 {
	if m.Cols != len(v) {
		panic("mathx: MulVec shape mismatch")
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		s := 0.0
		for j := 0; j < m.Cols; j++ {
			s += m.At(i, j) * v[j]
		}
		out[i] = s
	}
	return out
}

// Cholesky returns the lower-triangular L with L*Lᵀ = m for a symmetric
// positive-definite m, or an error when m is not positive definite.
func (m *Mat) Cholesky() (*Mat, error) {
	if m.Rows != m.Cols {
		return nil, fmt.Errorf("mathx: Cholesky of non-square %dx%d matrix", m.Rows, m.Cols)
	}
	n := m.Rows
	l := NewMat(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := m.At(i, j)
			for k := 0; k < j; k++ {
				sum -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if sum <= 0 {
					return nil, fmt.Errorf("mathx: Cholesky pivot %d not positive (%g)", i, sum)
				}
				l.Set(i, i, math.Sqrt(sum))
			} else {
				l.Set(i, j, sum/l.At(j, j))
			}
		}
	}
	return l, nil
}

// Inverse returns m⁻¹ via Gauss-Jordan elimination with partial pivoting, or
// an error when m is singular. Intended for the tiny (≤4x4) matrices used by
// the Kalman filter reference implementation.
func (m *Mat) Inverse() (*Mat, error) {
	if m.Rows != m.Cols {
		return nil, fmt.Errorf("mathx: Inverse of non-square %dx%d matrix", m.Rows, m.Cols)
	}
	n := m.Rows
	a := m.Clone()
	inv := Identity(n)
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		best := math.Abs(a.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a.At(r, col)); v > best {
				best, pivot = v, r
			}
		}
		if best == 0 {
			return nil, fmt.Errorf("mathx: Inverse of singular matrix (column %d)", col)
		}
		if pivot != col {
			a.swapRows(pivot, col)
			inv.swapRows(pivot, col)
		}
		p := a.At(col, col)
		for j := 0; j < n; j++ {
			a.Set(col, j, a.At(col, j)/p)
			inv.Set(col, j, inv.At(col, j)/p)
		}
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := a.At(r, col)
			if f == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				a.Set(r, j, a.At(r, j)-f*a.At(col, j))
				inv.Set(r, j, inv.At(r, j)-f*inv.At(col, j))
			}
		}
	}
	return inv, nil
}

func (m *Mat) swapRows(i, j int) {
	ri := m.Data[i*m.Cols : (i+1)*m.Cols]
	rj := m.Data[j*m.Cols : (j+1)*m.Cols]
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}

// Symmetrize overwrites m with (m + mᵀ)/2, guarding covariance updates
// against floating-point asymmetry drift.
func (m *Mat) Symmetrize() {
	if m.Rows != m.Cols {
		panic("mathx: Symmetrize of non-square matrix")
	}
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Cols; j++ {
			v := 0.5 * (m.At(i, j) + m.At(j, i))
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
}

// MaxAbsDiff returns the maximum absolute elementwise difference between m
// and n; useful in tests.
func (m *Mat) MaxAbsDiff(n *Mat) float64 {
	if m.Rows != n.Rows || m.Cols != n.Cols {
		panic("mathx: MaxAbsDiff shape mismatch")
	}
	max := 0.0
	for i := range m.Data {
		if d := math.Abs(m.Data[i] - n.Data[i]); d > max {
			max = d
		}
	}
	return max
}

// String renders the matrix for debugging.
func (m *Mat) String() string {
	var b strings.Builder
	for i := 0; i < m.Rows; i++ {
		b.WriteString("[")
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				b.WriteString(" ")
			}
			fmt.Fprintf(&b, "%9.4f", m.At(i, j))
		}
		b.WriteString("]\n")
	}
	return b.String()
}
