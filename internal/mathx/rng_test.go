package mathx

import (
	"math"
	"testing"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed generators diverged at draw %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical draws", same)
	}
}

func TestRNGZeroSeedIsUsable(t *testing.T) {
	r := NewRNG(0)
	// splitmix64 seeding must avoid the xoshiro all-zero fixed point.
	allZero := true
	for i := 0; i < 10; i++ {
		if r.Uint64() != 0 {
			allZero = false
		}
	}
	if allZero {
		t.Fatal("seed 0 produced a stuck all-zero stream")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(11)
	n := 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / float64(n)
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBoundsAndCoverage(t *testing.T) {
	r := NewRNG(3)
	const n = 10
	counts := make([]int, n)
	for i := 0; i < 100000; i++ {
		v := r.Intn(n)
		if v < 0 || v >= n {
			t.Fatalf("Intn out of range: %d", v)
		}
		counts[v]++
	}
	for i, c := range counts {
		if c < 8000 || c > 12000 {
			t.Fatalf("Intn(%d) bucket %d count %d outside [8000,12000]", n, i, c)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(5)
	n := 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sumSq += x * x
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestNormalScaling(t *testing.T) {
	r := NewRNG(9)
	n := 100000
	var sum float64
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.Normal(10, 2)
		sum += xs[i]
	}
	mean := sum / float64(n)
	if math.Abs(mean-10) > 0.05 {
		t.Fatalf("Normal(10,2) mean = %v", mean)
	}
	if sd := StdDev(xs); math.Abs(sd-2) > 0.05 {
		t.Fatalf("Normal(10,2) stddev = %v", sd)
	}
}

func TestUniformRange(t *testing.T) {
	r := NewRNG(13)
	for i := 0; i < 10000; i++ {
		v := r.Uniform(-3, 7)
		if v < -3 || v >= 7 {
			t.Fatalf("Uniform(-3,7) out of range: %v", v)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(17)
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(30)
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShuffleKeepsMultiset(t *testing.T) {
	r := NewRNG(19)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, x := range xs {
		got += x
	}
	if got != sum {
		t.Fatalf("Shuffle changed contents: %v", xs)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := NewRNG(23)
	n := 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		x := r.ExpFloat64()
		if x < 0 {
			t.Fatalf("ExpFloat64 negative: %v", x)
		}
		sum += x
	}
	if mean := sum / float64(n); math.Abs(mean-1) > 0.02 {
		t.Fatalf("exponential mean = %v, want ~1", mean)
	}
}

func TestCategoricalProportions(t *testing.T) {
	r := NewRNG(29)
	w := []float64{1, 2, 3, 4}
	counts := make([]int, len(w))
	n := 100000
	for i := 0; i < n; i++ {
		counts[r.Categorical(w)]++
	}
	total := Sum(w)
	for i, wi := range w {
		want := float64(n) * wi / total
		got := float64(counts[i])
		if math.Abs(got-want) > 0.06*float64(n) {
			t.Fatalf("Categorical bucket %d: got %v want ~%v", i, got, want)
		}
	}
}

func TestCategoricalPanicsOnZeroSum(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Categorical with zero weights did not panic")
		}
	}()
	NewRNG(1).Categorical([]float64{0, 0})
}

func TestSplitIndependence(t *testing.T) {
	parent := NewRNG(42)
	a := parent.Split(1)
	b := parent.Split(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split children nearly identical: %d/100 equal draws", same)
	}
}

func TestSplitDeterminism(t *testing.T) {
	a := NewRNG(42).Split(7)
	b := NewRNG(42).Split(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Split is not deterministic")
		}
	}
}

func BenchmarkRNGUint64(b *testing.B) {
	r := NewRNG(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= r.Uint64()
	}
	_ = sink
}

func BenchmarkRNGNormFloat64(b *testing.B) {
	r := NewRNG(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += r.NormFloat64()
	}
	_ = sink
}

// TestRNGStateRoundTrip checks that State/SetState resume the stream
// bit-exactly, including across the Gaussian pair cache: the capture is taken
// after an odd number of NormFloat64 draws, so a restore that dropped the
// cached second variate would shift every subsequent Gaussian draw.
func TestRNGStateRoundTrip(t *testing.T) {
	a := NewRNG(7)
	for i := 0; i < 13; i++ {
		a.Uint64()
	}
	for i := 0; i < 3; i++ {
		a.NormFloat64() // odd count: leaves a cached variate pending
	}
	st := a.State()
	if !st.HasGauss {
		t.Fatal("expected a cached Gaussian variate after an odd draw count")
	}
	b := NewRNG(999) // deliberately different stream before restore
	b.NormFloat64()
	b.SetState(st)
	for i := 0; i < 64; i++ {
		if ga, gb := a.NormFloat64(), b.NormFloat64(); ga != gb {
			t.Fatalf("gaussian draw %d diverged after restore: %v != %v", i, ga, gb)
		}
		if ua, ub := a.Uint64(), b.Uint64(); ua != ub {
			t.Fatalf("uniform draw %d diverged after restore: %d != %d", i, ua, ub)
		}
	}
}
