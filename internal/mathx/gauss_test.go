package mathx

import (
	"math"
	"testing"
)

func TestGaussianPDFStandard(t *testing.T) {
	got := GaussianPDF(0, 0, 1)
	want := 1 / math.Sqrt(2*math.Pi)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("pdf(0;0,1) = %v, want %v", got, want)
	}
}

func TestGaussianPDFSymmetry(t *testing.T) {
	for _, x := range []float64{0.1, 0.5, 1, 2, 3.7} {
		if math.Abs(GaussianPDF(x, 0, 1)-GaussianPDF(-x, 0, 1)) > 1e-15 {
			t.Fatalf("pdf asymmetric at %v", x)
		}
	}
}

func TestGaussianPDFIntegratesToOne(t *testing.T) {
	// Trapezoidal integral over [-8, 8] sigma.
	const n = 10000
	h := 16.0 / n
	sum := 0.0
	for i := 0; i <= n; i++ {
		x := -8 + float64(i)*h
		w := 1.0
		if i == 0 || i == n {
			w = 0.5
		}
		sum += w * GaussianPDF(x, 0, 1)
	}
	if math.Abs(sum*h-1) > 1e-6 {
		t.Fatalf("pdf integral = %v", sum*h)
	}
}

func TestGaussianLogPDFConsistent(t *testing.T) {
	for _, x := range []float64{-3, -0.5, 0, 1.2, 4} {
		p := GaussianPDF(x, 1, 2)
		lp := GaussianLogPDF(x, 1, 2)
		if math.Abs(math.Log(p)-lp) > 1e-10 {
			t.Fatalf("logpdf inconsistent at %v: log(%v)=%v vs %v", x, p, math.Log(p), lp)
		}
	}
}

func TestGaussianLogPDFNoUnderflow(t *testing.T) {
	// Far tail: pdf underflows to 0 but logpdf remains finite.
	lp := GaussianLogPDF(100, 0, 1)
	if math.IsInf(lp, 0) || math.IsNaN(lp) {
		t.Fatalf("logpdf at far tail = %v", lp)
	}
	if GaussianPDF(100, 0, 1) != 0 {
		t.Skip("pdf did not underflow on this platform")
	}
}

func TestGaussianPDFPanicsOnBadSigma(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("GaussianPDF with sigma=0 did not panic")
		}
	}()
	GaussianPDF(0, 0, 0)
}

func TestStudentTLogPDFIntegratesToOne(t *testing.T) {
	// Trapezoidal integral over a wide span; nu=3 tails decay slowly, so the
	// span must be large and the tolerance looser than the Gaussian test's.
	for _, nu := range []float64{1, 3, 8} {
		const n = 400000
		lo, hi := -2000.0, 2000.0
		h := (hi - lo) / n
		sum := 0.0
		for i := 0; i <= n; i++ {
			x := lo + float64(i)*h
			w := 1.0
			if i == 0 || i == n {
				w = 0.5
			}
			sum += w * math.Exp(StudentTLogPDF(x, 0, 1, nu))
		}
		if math.Abs(sum*h-1) > 2e-3 {
			t.Fatalf("nu=%v: integral = %v", nu, sum*h)
		}
	}
}

func TestStudentTLogPDFApproachesGaussian(t *testing.T) {
	// With many degrees of freedom the t density converges to the Gaussian.
	for _, x := range []float64{-2, -0.3, 0, 0.7, 1.9} {
		tLP := StudentTLogPDF(x, 0.5, 1.2, 1e6)
		gLP := GaussianLogPDF(x, 0.5, 1.2)
		if math.Abs(tLP-gLP) > 1e-4 {
			t.Fatalf("x=%v: t(nu=1e6)=%v vs gaussian=%v", x, tLP, gLP)
		}
	}
}

func TestStudentTLogPDFHeavierTails(t *testing.T) {
	// The whole point: far-tail log density must dominate the Gaussian's.
	for _, x := range []float64{5, 10, 50} {
		if StudentTLogPDF(x, 0, 1, 4) <= GaussianLogPDF(x, 0, 1) {
			t.Fatalf("x=%v: t tail not heavier than gaussian", x)
		}
	}
	// And it must stay finite arbitrarily far out.
	lp := StudentTLogPDF(1e12, 0, 1, 4)
	if math.IsInf(lp, 0) || math.IsNaN(lp) {
		t.Fatalf("far-tail t logpdf = %v", lp)
	}
}

func TestStudentTLogPDFPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"zero scale": func() { StudentTLogPDF(0, 0, 0, 3) },
		"zero nu":    func() { StudentTLogPDF(0, 0, 1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestMVNSampleMoments(t *testing.T) {
	mean := []float64{1, -2}
	cov := MatFromRows([]float64{2, 0.8}, []float64{0.8, 1})
	d, err := NewMVN(mean, cov)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRNG(99)
	n := 100000
	var s0, s1, s00, s11, s01 float64
	for i := 0; i < n; i++ {
		x := d.Sample(r)
		s0 += x[0]
		s1 += x[1]
		s00 += x[0] * x[0]
		s11 += x[1] * x[1]
		s01 += x[0] * x[1]
	}
	fn := float64(n)
	m0, m1 := s0/fn, s1/fn
	if math.Abs(m0-1) > 0.03 || math.Abs(m1+2) > 0.03 {
		t.Fatalf("MVN mean = (%v, %v)", m0, m1)
	}
	c00 := s00/fn - m0*m0
	c11 := s11/fn - m1*m1
	c01 := s01/fn - m0*m1
	if math.Abs(c00-2) > 0.06 || math.Abs(c11-1) > 0.04 || math.Abs(c01-0.8) > 0.04 {
		t.Fatalf("MVN cov = [[%v %v][%v %v]]", c00, c01, c01, c11)
	}
}

func TestMVNDimensionMismatch(t *testing.T) {
	if _, err := NewMVN([]float64{1}, Identity(2)); err == nil {
		t.Fatal("NewMVN accepted a dimension mismatch")
	}
}

func TestMVNRejectsIndefiniteCov(t *testing.T) {
	cov := MatFromRows([]float64{1, 2}, []float64{2, 1})
	if _, err := NewMVN([]float64{0, 0}, cov); err == nil {
		t.Fatal("NewMVN accepted an indefinite covariance")
	}
}

func TestLogSumExp(t *testing.T) {
	xs := []float64{math.Log(1), math.Log(2), math.Log(3)}
	if got := LogSumExp(xs); math.Abs(got-math.Log(6)) > 1e-12 {
		t.Fatalf("LogSumExp = %v, want log 6", got)
	}
}

func TestLogSumExpStability(t *testing.T) {
	xs := []float64{-1000, -1000, -1000}
	got := LogSumExp(xs)
	want := -1000 + math.Log(3)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("LogSumExp far-tail = %v, want %v", got, want)
	}
}

func TestLogSumExpEdge(t *testing.T) {
	if !math.IsInf(LogSumExp(nil), -1) {
		t.Fatal("LogSumExp(empty) should be -Inf")
	}
	if !math.IsInf(LogSumExp([]float64{math.Inf(-1)}), -1) {
		t.Fatal("LogSumExp(-Inf) should be -Inf")
	}
}
