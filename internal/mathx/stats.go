package mathx

import (
	"math"
	"sort"
)

// Sum returns the sum of xs (0 for empty input).
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Mean returns the arithmetic mean of xs, or NaN for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	return Sum(xs) / float64(len(xs))
}

// Variance returns the population variance of xs, or NaN when len(xs) == 0.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// RMS returns the root mean square of xs, or NaN for empty input.
func RMS(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += x * x
	}
	return math.Sqrt(s / float64(len(xs)))
}

// MinMax returns the minimum and maximum of xs; it panics on empty input.
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		panic("mathx: MinMax of empty slice")
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics. It panics on empty input or q
// outside [0, 1].
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("mathx: Quantile of empty slice")
	}
	if q < 0 || q > 1 {
		panic("mathx: Quantile q outside [0,1]")
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Normalize scales xs in place so it sums to 1 and returns the original sum.
// If the sum is zero or not finite, xs is reset to the uniform distribution
// and the returned sum is 0; particle filters use that as the degeneracy
// recovery path.
func Normalize(xs []float64) float64 {
	s := Sum(xs)
	if s <= 0 || math.IsNaN(s) || math.IsInf(s, 0) {
		u := 1.0 / float64(len(xs))
		for i := range xs {
			xs[i] = u
		}
		return 0
	}
	inv := 1 / s
	for i := range xs {
		xs[i] *= inv
	}
	return s
}

// WeightedMean returns Σ w_i x_i / Σ w_i, or NaN when the weights sum to 0.
func WeightedMean(xs, ws []float64) float64 {
	if len(xs) != len(ws) {
		panic("mathx: WeightedMean length mismatch")
	}
	var sw, sx float64
	for i := range xs {
		sw += ws[i]
		sx += ws[i] * xs[i]
	}
	if sw == 0 {
		return math.NaN()
	}
	return sx / sw
}

// Clamp limits x into [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// ApproxEqual reports whether a and b differ by at most tol in absolute
// value, treating NaN as never equal.
func ApproxEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}
