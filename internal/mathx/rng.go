// Package mathx provides the small numerical substrate used throughout the
// repository: a deterministic random number generator, 2-D vector and small
// dense matrix algebra, Gaussian and multivariate-Gaussian sampling, circular
// (angular) arithmetic, and summary statistics.
//
// The package exists because the evaluation must be bit-reproducible across
// runs and platforms: every stochastic component (deployment, target motion,
// measurement noise, resampling) draws from an explicitly seeded mathx.RNG,
// never from a global source.
package mathx

import "math"

// RNG is a deterministic pseudo-random number generator
// (xoshiro256** seeded via splitmix64). It is not safe for concurrent use;
// give each goroutine its own RNG (see Split).
type RNG struct {
	s [4]uint64
	// cached second variate from the polar Gaussian method
	gauss   float64
	hasGaus bool
}

// NewRNG returns an RNG seeded deterministically from seed.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	r.Seed(seed)
	return r
}

// Seed resets the generator state from seed using splitmix64, so that any
// seed (including 0) yields a well-mixed state.
func (r *RNG) Seed(seed uint64) {
	sm := seed
	next := func() uint64 {
		sm += 0x9E3779B97F4A7C15
		z := sm
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		return z ^ (z >> 31)
	}
	for i := range r.s {
		r.s[i] = next()
	}
	r.hasGaus = false
}

// RNGState is the complete serializable generator state: the xoshiro256**
// words plus the polar-method Gaussian cache. Checkpointing a filter mid-run
// must capture the cache too — NormFloat64 produces variates in pairs, so a
// restore that dropped a cached second variate would shift every subsequent
// Gaussian draw by one and break bit-reproducibility.
type RNGState struct {
	S        [4]uint64
	Gauss    float64
	HasGauss bool
}

// State captures the generator's full internal state for checkpointing.
func (r *RNG) State() RNGState {
	return RNGState{S: r.s, Gauss: r.gauss, HasGauss: r.hasGaus}
}

// SetState restores a state captured by State: the subsequent output stream
// continues bit-exactly where the captured generator's would have.
func (r *RNG) SetState(st RNGState) {
	r.s = st.S
	r.gauss = st.Gauss
	r.hasGaus = st.HasGauss
}

// Split derives an independent child generator from the current one. The
// child's stream is a deterministic function of the parent state and key, so
// per-node or per-component generators can be created reproducibly without
// coupling their consumption order.
func (r *RNG) Split(key uint64) *RNG {
	return NewRNG(r.Uint64() ^ (key * 0x9E3779B97F4A7C15))
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("mathx: Intn called with n <= 0")
	}
	// Lemire's nearly-divisionless bounded generation.
	bound := uint64(n)
	x := r.Uint64()
	hi, lo := mul64(x, bound)
	if lo < bound {
		threshold := -bound % bound
		for lo < threshold {
			x = r.Uint64()
			hi, lo = mul64(x, bound)
		}
	}
	return int(hi)
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	a0, a1 := a&mask32, a>>32
	b0, b1 := b&mask32, b>>32
	t := a1*b0 + (a0*b0)>>32
	w1 := t&mask32 + a0*b1
	hi = a1*b1 + t>>32 + w1>>32
	lo = a * b
	return
}

// Uniform returns a uniform float64 in [lo, hi).
func (r *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// NormFloat64 returns a standard normal variate using the Marsaglia polar
// method with one-variate caching.
func (r *RNG) NormFloat64() float64 {
	if r.hasGaus {
		r.hasGaus = false
		return r.gauss
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		r.gauss = v * f
		r.hasGaus = true
		return u * f
	}
}

// Normal returns a normal variate with the given mean and standard deviation.
func (r *RNG) Normal(mean, stddev float64) float64 {
	return mean + stddev*r.NormFloat64()
}

// NormFloat64Fill fills dst with independent standard normal variates,
// consuming the generator exactly as len(dst) sequential NormFloat64 calls
// would — batched and one-at-a-time sampling produce identical streams, so
// callers can batch propagation draws without perturbing reproducibility.
func (r *RNG) NormFloat64Fill(dst []float64) {
	for i := range dst {
		dst[i] = r.NormFloat64()
	}
}

// NormalFill fills dst with independent N(mean, stddev²) variates, with the
// same stream-compatibility guarantee as NormFloat64Fill. Use it with a
// reused buffer to amortize per-draw call overhead on hot propagation paths
// without allocating.
func (r *RNG) NormalFill(dst []float64, mean, stddev float64) {
	for i := range dst {
		dst[i] = mean + stddev*r.NormFloat64()
	}
}

// Perm returns a uniformly random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n elements using swap, Fisher-Yates style.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// ExpFloat64 returns an exponentially distributed variate with rate 1.
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Categorical draws an index with probability proportional to weights[i].
// Weights need not be normalized; they must be non-negative with a positive
// sum, otherwise Categorical panics.
func (r *RNG) Categorical(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w < 0 || math.IsNaN(w) {
			panic("mathx: Categorical weight negative or NaN")
		}
		total += w
	}
	if total <= 0 {
		panic("mathx: Categorical weights sum to zero")
	}
	u := r.Float64() * total
	acc := 0.0
	for i, w := range weights {
		acc += w
		if u < acc {
			return i
		}
	}
	return len(weights) - 1
}
