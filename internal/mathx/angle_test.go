package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestWrapAngleKnown(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 0},
		{math.Pi, math.Pi},
		{-math.Pi, math.Pi},
		{3 * math.Pi, math.Pi},
		{2 * math.Pi, 0},
		{-2 * math.Pi, 0},
		{math.Pi / 4, math.Pi / 4},
		{9 * math.Pi / 4, math.Pi / 4},
		{-9 * math.Pi / 4, -math.Pi / 4},
	}
	for _, c := range cases {
		if got := WrapAngle(c.in); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("WrapAngle(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestWrapAngleRangeProperty(t *testing.T) {
	f := func(theta float64) bool {
		if math.IsNaN(theta) || math.IsInf(theta, 0) {
			return true
		}
		theta = math.Mod(theta, 1e6)
		w := WrapAngle(theta)
		if w <= -math.Pi || w > math.Pi {
			return false
		}
		// Same point on the circle.
		return math.Abs(math.Sin(w)-math.Sin(theta)) < 1e-6 &&
			math.Abs(math.Cos(w)-math.Cos(theta)) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAngleDiffSeam(t *testing.T) {
	// Across the ±pi seam, the difference should be small, not ~2pi.
	a := math.Pi - 0.05
	b := -math.Pi + 0.05
	if got := AngleDiff(a, b); math.Abs(got+0.1) > 1e-9 {
		t.Fatalf("AngleDiff across seam = %v, want -0.1", got)
	}
	if got := AngleDiff(b, a); math.Abs(got-0.1) > 1e-9 {
		t.Fatalf("AngleDiff across seam = %v, want 0.1", got)
	}
}

func TestAngleDiffAntisymmetry(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		a = math.Mod(a, 100)
		b = math.Mod(b, 100)
		d1 := AngleDiff(a, b)
		d2 := AngleDiff(b, a)
		// d1 = -d2 up to the pi == -pi identification.
		return math.Abs(WrapAngle(d1+d2)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDegRadRoundTrip(t *testing.T) {
	for _, deg := range []float64{-180, -15, 0, 15, 90, 360} {
		if got := Rad2Deg(Deg2Rad(deg)); math.Abs(got-deg) > 1e-10 {
			t.Errorf("round trip %v -> %v", deg, got)
		}
	}
	if math.Abs(Deg2Rad(180)-math.Pi) > 1e-15 {
		t.Fatal("Deg2Rad(180) != pi")
	}
}

func TestMeanAngle(t *testing.T) {
	// Mean of angles straddling the seam should be pi, not 0.
	got := MeanAngle([]float64{math.Pi - 0.1, -math.Pi + 0.1})
	if math.Abs(math.Abs(got)-math.Pi) > 1e-9 {
		t.Fatalf("MeanAngle across seam = %v, want ±pi", got)
	}
	if got := MeanAngle([]float64{0.2, 0.4}); math.Abs(got-0.3) > 1e-9 {
		t.Fatalf("MeanAngle = %v, want 0.3", got)
	}
	if !math.IsNaN(MeanAngle(nil)) {
		t.Fatal("MeanAngle(empty) should be NaN")
	}
}
