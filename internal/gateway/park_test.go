package gateway

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/ring"
	"repro/internal/serve"
)

// TestParkRidesThroughRecovery is the crash-recovery-window contract in
// miniature: a backend enters its recovering phase (503 "recovering" on /v1,
// ring health Recovering), requests for its sessions park instead of
// failing, and when the backend comes back they complete — zero client-
// visible errors, just latency.
func TestParkRidesThroughRecovery(t *testing.T) {
	tc := newTestClusterCfg(t, 2, func(cfg *Config) {
		cfg.ParkTimeout = 5 * time.Second
	})
	spec := testSpec("park-1", 4, 11)
	_, owner := tc.create(spec)
	batches, err := serve.Observations(spec)
	if err != nil {
		t.Fatal(err)
	}
	tc.feed(spec.ID, batches[0])

	// The owner crashes and comes back recovering: /v1 and /admin gated
	// behind 503 "recovering", ring sees Recovering.
	tc.srvs[owner].SetRecovering(true)
	tc.gw.Ring().SetHealth(owner, ring.Recovering, "")

	var wg sync.WaitGroup
	errs := make(chan error, len(batches))
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, b := range batches[1:] {
			if err := tc.tryFeed(spec.ID, b); err != nil {
				errs <- err
				return
			}
		}
	}()

	// Recovery completes while the feed is parked.
	time.Sleep(150 * time.Millisecond)
	tc.srvs[owner].SetRecovering(false)
	tc.gw.Ring().SetHealth(owner, ring.Ready, "")
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("feed through recovery window failed: %v", err)
	}

	if got := len(tc.records(spec.ID)); got != len(batches) {
		t.Fatalf("session finished with %d records, want %d", got, len(batches))
	}
	if tc.gw.met.parked.Load() == 0 {
		t.Fatal("no request parked during the recovery window")
	}
	if tc.gw.met.parkTimeouts.Load() != 0 {
		t.Fatalf("%d parks timed out in a healthy drill", tc.gw.met.parkTimeouts.Load())
	}
	if q := tc.gw.met.parkQuantile(0.5); math.IsNaN(q) {
		t.Fatal("park latency histogram recorded nothing")
	}
}

// TestParkTimesOutEventually: if the fleet never heals, parked requests fail
// after ParkTimeout with a 5xx — bounded patience, not a hang.
func TestParkTimesOutEventually(t *testing.T) {
	tc := newTestClusterCfg(t, 2, func(cfg *Config) {
		cfg.ParkTimeout = 200 * time.Millisecond
		cfg.Route = RetryConfig{Passes: 2, Base: 10 * time.Millisecond, Max: 20 * time.Millisecond}
	})
	spec := testSpec("park-timeout-1", 4, 3)
	_, owner := tc.create(spec)
	tc.srvs[owner].SetRecovering(true)
	tc.gw.Ring().SetHealth(owner, ring.Recovering, "")

	start := time.Now()
	err := tc.tryFeed(spec.ID, serve.Batch{K: 1})
	waited := time.Since(start)
	if err == nil {
		t.Fatal("feed succeeded against a permanently recovering owner")
	}
	if !strings.Contains(err.Error(), "503") {
		t.Fatalf("expected a 503 after park timeout, got: %v", err)
	}
	if waited < 200*time.Millisecond {
		t.Fatalf("gave up after %v, before the 200ms park timeout", waited)
	}
	if tc.gw.met.parkTimeouts.Load() == 0 {
		t.Fatal("park timeout not counted")
	}
}

// TestRetryable503Classification pins the boundary between phase 503s the
// chain routes around and backpressure 503s the client must see.
func TestRetryable503Classification(t *testing.T) {
	retryable := []string{
		`{"error":"recovering: replaying session logs","request_id":"r1"}`,
		`{"error":"server is draining","request_id":"r1"}`,
		"recovering",
		"draining",
	}
	for _, body := range retryable {
		if !retryable503([]byte(body)) {
			t.Fatalf("phase body not classified retryable: %s", body)
		}
	}
	final := []string{
		`{"error":"shard 1 queue full (64 of 64)","request_id":"r1"}`,
		`{"error":"session \"recovering-sim\" queue full (9 queued, budget 8)"}`,
		`{"error":"no live session \"draining-test\""}`,
		"",
		"some proxy error page",
	}
	for _, body := range final {
		if retryable503([]byte(body)) {
			t.Fatalf("backpressure body misclassified as retryable: %s", body)
		}
	}
}
