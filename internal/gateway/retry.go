package gateway

import (
	"math/rand"
	"time"
)

// RetryConfig is a bounded retry budget with exponential backoff and full
// jitter: attempt pass n sleeps a uniform random duration in
// [0, min(Max, Base·2ⁿ)]. Full jitter (rather than equal or decorrelated)
// because the gateway's retries are driven by fleet-wide events — a backend
// crash makes every in-flight request retry at once, and spreading them over
// the whole window avoids a synchronized thundering herd at the recovering
// backend.
type RetryConfig struct {
	Passes int           // route-chain passes before giving up
	Base   time.Duration // first backoff ceiling
	Max    time.Duration // backoff ceiling cap
}

func (rc RetryConfig) withDefaults(passes int, base, max time.Duration) RetryConfig {
	if rc.Passes <= 0 {
		rc.Passes = passes
	}
	if rc.Base <= 0 {
		rc.Base = base
	}
	if rc.Max <= 0 {
		rc.Max = max
	}
	return rc
}

// backoff returns the sleep before pass+1 (pass is 0-based).
func (rc RetryConfig) backoff(pass int) time.Duration {
	ceil := rc.Base
	for i := 0; i < pass && ceil < rc.Max; i++ {
		ceil *= 2
	}
	if ceil > rc.Max {
		ceil = rc.Max
	}
	if ceil <= 0 {
		return 0
	}
	return time.Duration(rand.Int63n(int64(ceil) + 1))
}
