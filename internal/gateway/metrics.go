package gateway

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// metrics is the gateway's own instrumentation (atomics; Prometheus text on
// /metrics alongside the aggregated backend section).
type metrics struct {
	requests         atomic.Int64 // session-scoped requests routed
	retries          atomic.Int64 // fallback attempts past the first backend
	noBackend        atomic.Int64 // requests that exhausted the chain
	holds            atomic.Int64 // requests parked behind an in-flight handoff
	migrations       atomic.Int64 // backend evacuations started
	migratedSessions atomic.Int64 // sessions successfully re-homed
}

// handleMetrics writes the gateway's own counters, then the fleet's metrics
// summed across backends: every non-comment line of each reachable backend's
// /metrics is parsed as `name{labels} value` and values are added per key.
// Counters and gauge totals aggregate meaningfully; the summed histogram is
// the fleet-wide latency distribution.
func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	fmt.Fprintf(w, "# HELP cdpfgw_requests_total Session-scoped requests routed through the gateway.\n")
	fmt.Fprintf(w, "# TYPE cdpfgw_requests_total counter\n")
	fmt.Fprintf(w, "cdpfgw_requests_total %d\n", g.met.requests.Load())
	fmt.Fprintf(w, "# HELP cdpfgw_route_retries_total Fallback attempts past the first backend in the chain.\n")
	fmt.Fprintf(w, "# TYPE cdpfgw_route_retries_total counter\n")
	fmt.Fprintf(w, "cdpfgw_route_retries_total %d\n", g.met.retries.Load())
	fmt.Fprintf(w, "# HELP cdpfgw_no_backend_total Requests that exhausted every backend in the chain.\n")
	fmt.Fprintf(w, "# TYPE cdpfgw_no_backend_total counter\n")
	fmt.Fprintf(w, "cdpfgw_no_backend_total %d\n", g.met.noBackend.Load())
	fmt.Fprintf(w, "# HELP cdpfgw_migration_holds_total Requests parked behind an in-flight session handoff.\n")
	fmt.Fprintf(w, "# TYPE cdpfgw_migration_holds_total counter\n")
	fmt.Fprintf(w, "cdpfgw_migration_holds_total %d\n", g.met.holds.Load())
	fmt.Fprintf(w, "# HELP cdpfgw_migrations_total Backend evacuations started.\n")
	fmt.Fprintf(w, "# TYPE cdpfgw_migrations_total counter\n")
	fmt.Fprintf(w, "cdpfgw_migrations_total %d\n", g.met.migrations.Load())
	fmt.Fprintf(w, "# HELP cdpfgw_migrated_sessions_total Sessions successfully re-homed by migration.\n")
	fmt.Fprintf(w, "# TYPE cdpfgw_migrated_sessions_total counter\n")
	fmt.Fprintf(w, "cdpfgw_migrated_sessions_total %d\n", g.met.migratedSessions.Load())

	sums, scraped := g.scrapeBackends(r)
	fmt.Fprintf(w, "# Aggregated below: per-metric sums across %d reachable backend(s).\n", scraped)
	keys := make([]string, 0, len(sums))
	for k := range sums {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s %g\n", k, sums[k])
	}
}

// scrapeBackends polls every reachable backend's /metrics concurrently and
// sums sample values by `name{labels}` key.
func (g *Gateway) scrapeBackends(r *http.Request) (map[string]float64, int) {
	members := g.ring.Members()
	sums := make(map[string]float64)
	scraped := 0
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, m := range members {
		wg.Add(1)
		go func(addr string) {
			defer wg.Done()
			local, err := scrapeOne(g.client, r, addr)
			if err != nil {
				return
			}
			mu.Lock()
			scraped++
			for k, v := range local {
				sums[k] += v
			}
			mu.Unlock()
		}(m.Addr)
	}
	wg.Wait()
	return sums, scraped
}

// scrapeOne fetches one backend's exposition and parses it into key->value.
func scrapeOne(client *http.Client, r *http.Request, addr string) (map[string]float64, error) {
	ctx, cancel := context.WithTimeout(r.Context(), 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("HTTP %d", resp.StatusCode)
	}
	out := make(map[string]float64)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// `name{labels} value` — labels may contain spaces inside quotes, so
		// split at the last space.
		i := strings.LastIndexByte(line, ' ')
		if i <= 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			continue
		}
		out[line[:i]] += v
	}
	return out, sc.Err()
}
