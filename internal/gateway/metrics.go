package gateway

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// metrics is the gateway's own instrumentation (atomics; Prometheus text on
// /metrics alongside the aggregated backend section).
type metrics struct {
	requests         atomic.Int64 // session-scoped requests routed
	retries          atomic.Int64 // fallback attempts past the first backend
	retryExhausted   atomic.Int64 // requests that burned the whole retry budget
	noBackend        atomic.Int64 // requests that exhausted the chain
	holds            atomic.Int64 // requests parked behind an in-flight handoff
	migrations       atomic.Int64 // backend evacuations started
	migratedSessions atomic.Int64 // sessions successfully re-homed
	breakerSkips     atomic.Int64 // attempts skipped because a breaker was open
	parked           atomic.Int64 // requests that parked on an unsettled ring
	parkTimeouts     atomic.Int64 // parks that expired without the fleet healing
	streamAborts     atomic.Int64 // SSE welds aborted after a backend-side cut

	parkMu   sync.Mutex
	parkHist histogram
}

// observePark records how long a parked request waited before succeeding.
func (m *metrics) observePark(d time.Duration) {
	m.parkMu.Lock()
	m.parkHist.observe(d.Seconds())
	m.parkMu.Unlock()
}

// parkQuantile estimates a park-latency quantile; NaN with no observations.
func (m *metrics) parkQuantile(q float64) float64 {
	m.parkMu.Lock()
	defer m.parkMu.Unlock()
	return m.parkHist.quantile(q)
}

// latencyBuckets mirror the serve tier's histogram bounds (100 µs to ~52 s in
// powers of two) so fleet dashboards can overlay gateway park latency on
// backend step latency without bucket gymnastics.
var latencyBuckets = func() []float64 {
	b := make([]float64, 20)
	ub := 100e-6
	for i := range b {
		b[i] = ub
		ub *= 2
	}
	return b
}()

type histogram struct {
	counts [21]int64 // len(latencyBuckets)+1, last bucket is +Inf
	sum    float64
}

func (h *histogram) observe(v float64) {
	h.sum += v
	for i, ub := range latencyBuckets {
		if v <= ub {
			h.counts[i]++
			return
		}
	}
	h.counts[len(latencyBuckets)]++
}

func (h *histogram) quantile(q float64) float64 {
	var total int64
	for _, c := range h.counts {
		total += c
	}
	if total == 0 {
		return math.NaN()
	}
	rank := int64(math.Ceil(q * float64(total)))
	var cum int64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			if i < len(latencyBuckets) {
				return latencyBuckets[i]
			}
			return math.Inf(1)
		}
	}
	return math.Inf(1)
}

// formatUpperBound renders a bucket bound the way Prometheus clients do.
func formatUpperBound(ub float64) string {
	return strconv.FormatFloat(ub, 'g', -1, 64)
}

// handleMetrics writes the gateway's own counters, then the fleet's metrics
// summed across backends: every non-comment line of each reachable backend's
// /metrics is parsed as `name{labels} value` and values are added per key.
// Counters and gauge totals aggregate meaningfully; the summed histogram is
// the fleet-wide latency distribution.
func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n", name, help)
		fmt.Fprintf(w, "# TYPE %s counter\n", name)
		fmt.Fprintf(w, "%s %d\n", name, v)
	}
	counter("cdpfgw_requests_total", "Session-scoped requests routed through the gateway.", g.met.requests.Load())
	counter("cdpfgw_route_retries_total", "Fallback attempts past the first backend in the chain.", g.met.retries.Load())
	counter("cdpfgw_retry_exhausted_total", "Requests that burned the whole retry budget without an authoritative answer.", g.met.retryExhausted.Load())
	counter("cdpfgw_no_backend_total", "Requests that exhausted every backend in the chain.", g.met.noBackend.Load())
	counter("cdpfgw_migration_holds_total", "Requests parked behind an in-flight session handoff.", g.met.holds.Load())
	counter("cdpfgw_migrations_total", "Backend evacuations started.", g.met.migrations.Load())
	counter("cdpfgw_migrated_sessions_total", "Sessions successfully re-homed by migration.", g.met.migratedSessions.Load())
	counter("cdpfgw_breaker_skips_total", "Route attempts skipped because the backend's breaker was open.", g.met.breakerSkips.Load())
	counter("cdpfgw_parked_requests_total", "Requests that parked while the ring was unsettled.", g.met.parked.Load())
	counter("cdpfgw_park_timeouts_total", "Parked requests that timed out before the fleet healed.", g.met.parkTimeouts.Load())
	counter("cdpfgw_stream_aborts_total", "SSE streams aborted after a backend-side cut (client sees a reset, not a short stream).", g.met.streamAborts.Load())

	fmt.Fprintf(w, "# HELP cdpfgw_breaker_state Per-backend breaker state (0 closed, 1 open, 2 half-open).\n")
	fmt.Fprintf(w, "# TYPE cdpfgw_breaker_state gauge\n")
	names := make([]string, 0, len(g.breakers))
	for name := range g.breakers {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "cdpfgw_breaker_state{backend=%q} %d\n", name, int(g.breakers[name].current()))
	}
	fmt.Fprintf(w, "# HELP cdpfgw_breaker_opens_total Closed-to-open breaker transitions per backend.\n")
	fmt.Fprintf(w, "# TYPE cdpfgw_breaker_opens_total counter\n")
	for _, name := range names {
		fmt.Fprintf(w, "cdpfgw_breaker_opens_total{backend=%q} %d\n", name, g.breakers[name].opens.Load())
	}

	fmt.Fprintf(w, "# HELP cdpfgw_park_latency_seconds Time parked requests waited before succeeding.\n")
	fmt.Fprintf(w, "# TYPE cdpfgw_park_latency_seconds histogram\n")
	g.met.parkMu.Lock()
	hist := g.met.parkHist
	g.met.parkMu.Unlock()
	var cum int64
	for i, ub := range latencyBuckets {
		cum += hist.counts[i]
		fmt.Fprintf(w, "cdpfgw_park_latency_seconds_bucket{le=%q} %d\n", formatUpperBound(ub), cum)
	}
	cum += hist.counts[len(latencyBuckets)]
	fmt.Fprintf(w, "cdpfgw_park_latency_seconds_bucket{le=\"+Inf\"} %d\n", cum)
	fmt.Fprintf(w, "cdpfgw_park_latency_seconds_sum %g\n", hist.sum)
	fmt.Fprintf(w, "cdpfgw_park_latency_seconds_count %d\n", cum)

	sums, scraped := g.scrapeBackends(r)
	fmt.Fprintf(w, "# Aggregated below: per-metric sums across %d reachable backend(s).\n", scraped)
	keys := make([]string, 0, len(sums))
	for k := range sums {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s %g\n", k, sums[k])
	}
}

// scrapeBackends polls every reachable backend's /metrics concurrently and
// sums sample values by `name{labels}` key.
func (g *Gateway) scrapeBackends(r *http.Request) (map[string]float64, int) {
	members := g.ring.Members()
	sums := make(map[string]float64)
	scraped := 0
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, m := range members {
		wg.Add(1)
		go func(addr string) {
			defer wg.Done()
			local, err := scrapeOne(g.client, r, addr, g.scrapeTimeout)
			if err != nil {
				return
			}
			mu.Lock()
			scraped++
			for k, v := range local {
				sums[k] += v
			}
			mu.Unlock()
		}(m.Addr)
	}
	wg.Wait()
	return sums, scraped
}

// scrapeOne fetches one backend's exposition and parses it into key->value.
func scrapeOne(client *http.Client, r *http.Request, addr string, timeout time.Duration) (map[string]float64, error) {
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("HTTP %d", resp.StatusCode)
	}
	out := make(map[string]float64)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// `name{labels} value` — labels may contain spaces inside quotes, so
		// split at the last space.
		i := strings.LastIndexByte(line, ' ')
		if i <= 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			continue
		}
		out[line[:i]] += v
	}
	return out, sc.Err()
}
