package gateway

import (
	"sync"
	"sync/atomic"
	"time"
)

// BreakerConfig tunes the per-backend circuit breakers.
type BreakerConfig struct {
	// Failures is how many consecutive connection-level failures open the
	// breaker. 0 defaults to 5.
	Failures int
	// Cooldown is how long an open breaker waits before letting one
	// half-open probe through. 0 defaults to 1s.
	Cooldown time.Duration
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Failures <= 0 {
		c.Failures = 5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = time.Second
	}
	return c
}

// breaker is a per-backend circuit breaker over *connection-level* failures
// only — an HTTP response of any status is proof the backend is alive and
// counts as success. Closed admits everything; after Failures consecutive
// failures it opens and the backend is skipped in route chains; after
// Cooldown one half-open probe is admitted, and its outcome closes or
// re-opens the breaker.
type breaker struct {
	cfg BreakerConfig

	mu       sync.Mutex
	state    breakerState
	fails    int
	openedAt time.Time
	probing  bool // a half-open probe is in flight

	opens atomic.Int64 // closed→open transitions, for /metrics
}

type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

func newBreaker(cfg BreakerConfig) *breaker {
	return &breaker{cfg: cfg.withDefaults()}
}

// allow reports whether an attempt may be sent to this backend now. In the
// half-open state only a single probe is admitted at a time.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if time.Since(b.openedAt) < b.cfg.Cooldown {
			return false
		}
		b.state = breakerHalfOpen
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// succeed records an attempt that reached the backend (any HTTP status).
func (b *breaker) succeed() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = breakerClosed
	b.fails = 0
	b.probing = false
}

// fail records a connection-level failure.
func (b *breaker) fail() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == breakerHalfOpen {
		b.state = breakerOpen
		b.openedAt = time.Now()
		b.probing = false
		b.fails = b.cfg.Failures
		b.opens.Add(1)
		return
	}
	b.fails++
	if b.state == breakerClosed && b.fails >= b.cfg.Failures {
		b.state = breakerOpen
		b.openedAt = time.Now()
		b.opens.Add(1)
	}
}

// reset force-closes the breaker — wired to the prober's transition to
// Ready, which is independent evidence the backend is healthy again.
func (b *breaker) reset() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = breakerClosed
	b.fails = 0
	b.probing = false
}

// current returns the state for /cluster and /metrics.
func (b *breaker) current() breakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	// An open breaker past its cooldown is morally half-open; report the
	// stored state anyway — the transition happens on the next allow().
	return b.state
}
