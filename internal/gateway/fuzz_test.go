package gateway

import (
	"encoding/json"
	"fmt"
	"testing"
)

// FuzzRetryable503 drives the 503-body classifier with daemon-shaped error
// bodies carrying adversarial session IDs and request IDs. The invariants:
//
//   - the daemon's phase bodies (recovering gate, draining admit) are always
//     retryable, whatever the request ID;
//   - backpressure and lookup bodies are NEVER retryable, even when the
//     session ID embedded in the message contains phase words — a session
//     named "recovering" must not get its queue-full errors silently
//     re-routed;
//   - arbitrary bytes never panic the classifier.
func FuzzRetryable503(f *testing.F) {
	f.Add("sess-1", "r-1")
	f.Add("recovering", "draining")
	f.Add("server is draining", "recovering: replaying session logs")
	f.Add("\x00\xff{", `{"error":`)
	f.Fuzz(func(t *testing.T, id, rid string) {
		enc := func(msg string) []byte {
			b, err := json.Marshal(map[string]string{"error": msg, "request_id": rid})
			if err != nil {
				t.Fatal(err)
			}
			return b
		}
		for _, phase := range []string{
			"recovering: replaying session logs",
			"server is draining",
		} {
			if !retryable503(enc(phase)) {
				t.Fatalf("phase body not retryable: %s", enc(phase))
			}
		}
		for _, final := range []string{
			fmt.Sprintf("session %q queue full (9 queued, budget 8)", id),
			fmt.Sprintf("no live session %q", id),
			fmt.Sprintf("shard 3 queue full (64 of 64)"),
			fmt.Sprintf("session %q already exists", id),
		} {
			if retryable503(enc(final)) {
				t.Fatalf("non-phase body classified retryable: %s", enc(final))
			}
		}
		// Raw bytes (including invalid JSON) must classify without panicking.
		retryable503([]byte(id))
		retryable503([]byte(rid))
	})
}
