package gateway

import (
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
	"time"

	"repro/internal/ring"
)

// TestBreakerStateMachine walks closed → open → half-open → closed and the
// half-open failure re-open, with a short cooldown.
func TestBreakerStateMachine(t *testing.T) {
	b := newBreaker(BreakerConfig{Failures: 3, Cooldown: 20 * time.Millisecond})
	if !b.allow() || b.current() != breakerClosed {
		t.Fatal("new breaker should be closed and admitting")
	}
	// Two failures: still closed (threshold 3).
	b.fail()
	b.fail()
	if b.current() != breakerClosed || !b.allow() {
		t.Fatalf("2/3 failures opened the breaker (state %v)", b.current())
	}
	// A success resets the streak.
	b.succeed()
	b.fail()
	b.fail()
	if b.current() != breakerClosed {
		t.Fatal("success did not reset the failure streak")
	}
	// Third consecutive failure opens.
	b.fail()
	if b.current() != breakerOpen {
		t.Fatalf("3 consecutive failures left the breaker %v", b.current())
	}
	if b.allow() {
		t.Fatal("open breaker admitted an attempt inside its cooldown")
	}
	if n := b.opens.Load(); n != 1 {
		t.Fatalf("opens counter = %d, want 1", n)
	}
	// After the cooldown exactly one half-open probe is admitted.
	time.Sleep(25 * time.Millisecond)
	if !b.allow() {
		t.Fatal("breaker did not half-open after cooldown")
	}
	if b.current() != breakerHalfOpen {
		t.Fatalf("post-cooldown state %v, want half-open", b.current())
	}
	if b.allow() {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}
	// Probe fails: re-open, wait again, probe succeeds: closed.
	b.fail()
	if b.current() != breakerOpen {
		t.Fatalf("failed half-open probe left state %v", b.current())
	}
	time.Sleep(25 * time.Millisecond)
	if !b.allow() {
		t.Fatal("breaker did not half-open after second cooldown")
	}
	b.succeed()
	if b.current() != breakerClosed || !b.allow() {
		t.Fatalf("successful probe left state %v", b.current())
	}
	// reset() force-closes from any state.
	b.fail()
	b.fail()
	b.fail()
	b.reset()
	if b.current() != breakerClosed || !b.allow() {
		t.Fatal("reset did not close the breaker")
	}
}

// TestRetryBackoffBounds: full jitter stays in [0, min(Max, Base·2ⁿ)] and
// is not constant.
func TestRetryBackoffBounds(t *testing.T) {
	rc := RetryConfig{Passes: 4, Base: 10 * time.Millisecond, Max: 40 * time.Millisecond}
	ceilings := []time.Duration{10, 20, 40, 40, 40} // ms, per pass
	distinct := make(map[time.Duration]bool)
	for pass, ceilMs := range ceilings {
		ceil := ceilMs * time.Millisecond
		for i := 0; i < 100; i++ {
			d := rc.backoff(pass)
			if d < 0 || d > ceil {
				t.Fatalf("backoff(pass=%d) = %v outside [0, %v]", pass, d, ceil)
			}
			distinct[d] = true
		}
	}
	if len(distinct) < 10 {
		t.Fatalf("full jitter produced only %d distinct delays", len(distinct))
	}
}

// TestBreakerShieldsDeadBackend: with one backend's listener closed, the
// gateway keeps serving (fallthrough), the dead backend's breaker opens
// after the failure threshold, and skipped attempts show up in /metrics and
// /cluster. No client request fails.
func TestBreakerShieldsDeadBackend(t *testing.T) {
	tc := newTestClusterCfg(t, 3, func(cfg *Config) {
		cfg.Breaker = BreakerConfig{Failures: 3, Cooldown: 10 * time.Second}
		cfg.ParkTimeout = 300 * time.Millisecond // don't stall the test parking
	})
	// Kill b2's listener: conn refused, the crash the prober hasn't seen yet.
	dead := "b2"
	tc.https[dead].Close()

	br := tc.gw.breakerFor(dead)
	for i := 0; i < 40 && br.current() != breakerOpen; i++ {
		spec := testSpec(fmt.Sprintf("brk-%d", i), 4, uint64(i+1))
		tc.create(spec) // must succeed despite the dead backend
		if _, _, status := tc.info(spec.ID); status != http.StatusOK {
			t.Fatalf("info %s: HTTP %d with a dead backend in the ring", spec.ID, status)
		}
	}
	if br.current() != breakerOpen {
		t.Fatalf("dead backend's breaker is %v after 40 rounds, want open", br.current())
	}
	if tc.gw.met.breakerSkips.Load() == 0 {
		t.Fatal("open breaker never skipped an attempt")
	}

	resp, err := http.Get(tc.gwSrv.URL + "/cluster")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var info struct {
		Breakers map[string]string `json:"breakers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	if info.Breakers[dead] != "open" {
		t.Fatalf("/cluster breakers = %v, want %s open", info.Breakers, dead)
	}
}

// TestNoteHealthResetsBreaker: a prober-confirmed Ready closes the breaker
// without waiting out the cooldown.
func TestNoteHealthResetsBreaker(t *testing.T) {
	tc := newTestCluster(t, 2)
	br := tc.gw.breakerFor("b0")
	for i := 0; i < 5; i++ {
		br.fail()
	}
	if br.current() != breakerOpen {
		t.Fatalf("breaker state %v, want open", br.current())
	}
	tc.gw.NoteHealth("b0", ring.Down, ring.Ready)
	if br.current() != breakerClosed {
		t.Fatal("NoteHealth(Ready) did not close the breaker")
	}
}
