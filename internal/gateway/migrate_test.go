package gateway

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"testing"

	"repro/internal/serve"
	"repro/internal/trace"
)

// migrate POSTs /admin/migrate for a backend and decodes the report.
func (tc *testCluster) migrate(backend string) MigrationReport {
	tc.t.Helper()
	resp, err := http.Post(tc.gwSrv.URL+"/admin/migrate?backend="+backend, "", nil)
	if err != nil {
		tc.t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		tc.t.Fatalf("migrate %s: HTTP %d: %s", backend, resp.StatusCode, data)
	}
	var rep MigrationReport
	if err := json.Unmarshal(data, &rep); err != nil {
		tc.t.Fatal(err)
	}
	return rep
}

// busiest returns the backend holding the most live sessions, by direct
// manager census.
func (tc *testCluster) busiest() string {
	best, n := "", -1
	for _, name := range tc.names {
		if c := len(tc.mgrs[name].SessionIDs()); c > n {
			best, n = name, c
		}
	}
	return best
}

// TestMigrationByteIdentity is the headline cluster test: sessions are
// driven through the gateway while the busiest backend is evacuated
// mid-run, and every session's final trace — including the ones that
// changed homes halfway — must be byte-identical to its uninterrupted
// offline twin. Zero lost sessions, zero diverged records.
func TestMigrationByteIdentity(t *testing.T) {
	tc := newTestCluster(t, 3)
	const (
		nSessions = 9
		steps     = 8 // 9 filter iterations per session
		splitAt   = 4 // batches fed before the evacuation starts
	)

	specs := make([]serve.SessionSpec, nSessions)
	batches := make([][]serve.Batch, nSessions)
	for i := range specs {
		specs[i] = testSpec(fmt.Sprintf("mig-%d", i), steps, uint64(i+1))
		var err error
		batches[i], err = serve.Observations(specs[i])
		if err != nil {
			t.Fatal(err)
		}
		tc.create(specs[i])
	}
	for i, spec := range specs {
		for _, b := range batches[i][:splitAt] {
			tc.feed(spec.ID, b)
		}
	}

	victim := tc.busiest()
	if len(tc.mgrs[victim].SessionIDs()) == 0 {
		t.Fatalf("busiest backend %s holds no sessions", victim)
	}

	// Evacuate while the remaining batches are being fed concurrently: the
	// handoff holds and the 404 re-pass must keep every request invisible
	// to the drivers.
	var wg sync.WaitGroup
	feedErrs := make([]error, nSessions)
	for i, spec := range specs {
		wg.Add(1)
		go func(i int, id string, rest []serve.Batch) {
			defer wg.Done()
			for _, b := range rest {
				if err := tc.tryFeed(id, b); err != nil {
					feedErrs[i] = err
					return
				}
			}
		}(i, spec.ID, batches[i][splitAt:])
	}
	rep := tc.migrate(victim)
	wg.Wait()
	for i, err := range feedErrs {
		if err != nil {
			t.Fatalf("feeding session %d across migration: %v", i, err)
		}
	}
	if len(rep.Errors) > 0 {
		t.Fatalf("migration errors: %v", rep.Errors)
	}
	if len(rep.Moved)+len(rep.Skipped) == 0 {
		t.Fatalf("evacuating %s moved nothing", victim)
	}
	for id, dst := range rep.Moved {
		if dst == victim {
			t.Fatalf("session %s 'moved' back onto the evacuated backend", id)
		}
	}

	// The victim must end the run empty; every session's trace must match
	// its offline twin exactly.
	if left := tc.mgrs[victim].SessionIDs(); len(left) != 0 {
		t.Fatalf("evacuated backend %s still holds %v", victim, left)
	}
	for _, spec := range specs {
		got := tc.records(spec.ID)
		ref, err := serve.OfflineTrace(spec)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(ref.Records) {
			t.Fatalf("session %s: served %d records, offline %d", spec.ID, len(got), len(ref.Records))
		}
		for k, want := range ref.Records {
			if got[k] != want {
				t.Fatalf("session %s record %d diverged after migration:\nserved  %+v\noffline %+v",
					spec.ID, k, got[k], want)
			}
		}
	}

	// The gateway's own accounting saw the evacuation.
	if n := tc.gw.met.migratedSessions.Load(); n != int64(len(rep.Moved)) {
		t.Fatalf("metrics count %d migrated sessions, report says %d", n, len(rep.Moved))
	}
}

// TestMigrateIsIdempotent: a second evacuation of the same backend is a
// no-op rather than a double-move.
func TestMigrateIsIdempotent(t *testing.T) {
	tc := newTestCluster(t, 3)
	spec := testSpec("idem-1", 2, 9)
	tc.create(spec)
	first := tc.migrate(tc.busiest())
	again := tc.migrate(first.Backend)
	if len(again.Moved) != 0 || len(again.Errors) != 0 {
		t.Fatalf("second evacuation was not a no-op: %+v", again)
	}
}

// TestMigratedSessionKeepsStreaming: an SSE subscriber cut by migration can
// resubscribe through the gateway and receive the full, consistent history
// from the session's new home.
func TestMigratedSessionKeepsStreaming(t *testing.T) {
	tc := newTestCluster(t, 3)
	spec := testSpec("stream-1", 4, 11)
	batches, err := serve.Observations(spec)
	if err != nil {
		t.Fatal(err)
	}
	tc.create(spec)
	for _, b := range batches[:2] {
		tc.feed(spec.ID, b)
	}
	owner, _ := tc.gw.Ring().Owner(spec.ID)
	tc.migrate(owner.Name)
	for _, b := range batches[2:] {
		tc.feed(spec.ID, b)
	}
	got := tc.records(spec.ID)
	var want []trace.Record
	ref, err := serve.OfflineTrace(spec)
	if err != nil {
		t.Fatal(err)
	}
	want = ref.Records
	if len(got) != len(want) {
		t.Fatalf("resubscribed stream has %d records, want %d", len(got), len(want))
	}
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("record %d diverged across migration: %+v vs %+v", k, got[k], want[k])
		}
	}
}
