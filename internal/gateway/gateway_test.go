package gateway

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/ring"
	"repro/internal/scenario"
	"repro/internal/serve"
	"repro/internal/trace"
)

// testCluster is an in-process fleet: n real serve.Servers behind httptest
// listeners, one gateway in front.
type testCluster struct {
	t     *testing.T
	gw    *Gateway
	gwSrv *httptest.Server
	mgrs  map[string]*serve.Manager
	srvs  map[string]*serve.Server
	https map[string]*httptest.Server
	names []string
}

func newTestCluster(t *testing.T, n int) *testCluster {
	return newTestClusterCfg(t, n, func(cfg *Config) {})
}

// newTestClusterCfg lets a test tune the gateway config (breaker thresholds,
// park timeout, retry budget) before the gateway is built.
func newTestClusterCfg(t *testing.T, n int, tune func(*Config)) *testCluster {
	t.Helper()
	tc := &testCluster{
		t:     t,
		mgrs:  make(map[string]*serve.Manager),
		srvs:  make(map[string]*serve.Server),
		https: make(map[string]*httptest.Server),
	}
	var bks []ring.Backend
	for i := 0; i < n; i++ {
		met := serve.NewMetrics(nil)
		mgr := serve.NewManager(serve.ManagerConfig{
			Shards: 2, ShardQueue: 64, MaxSessions: 256, Metrics: met,
		})
		srv := serve.NewServer(mgr, met)
		ts := httptest.NewServer(srv)
		t.Cleanup(ts.Close)
		t.Cleanup(mgr.Drain)
		name := fmt.Sprintf("b%d", i)
		bks = append(bks, ring.Backend{Name: name, Addr: ts.URL})
		tc.mgrs[name] = mgr
		tc.srvs[name] = srv
		tc.https[name] = ts
		tc.names = append(tc.names, name)
	}
	r, err := ring.New(bks)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Ring: r}
	tune(&cfg)
	gw, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tc.gw = gw
	tc.gwSrv = httptest.NewServer(gw)
	t.Cleanup(tc.gwSrv.Close)
	return tc
}

func testSpec(id string, steps int, seed uint64) serve.SessionSpec {
	spec := serve.SessionSpec{ID: id, Scenario: scenario.Default(10, seed)}
	spec.Scenario.Steps = steps
	return spec
}

// create POSTs a session through the gateway and returns info + the backend
// that took it.
func (tc *testCluster) create(spec serve.SessionSpec) (serve.SessionInfo, string) {
	tc.t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(tc.gwSrv.URL+"/v1/sessions", "application/json", bytes.NewReader(body))
	if err != nil {
		tc.t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		data, _ := io.ReadAll(resp.Body)
		tc.t.Fatalf("create %s: HTTP %d: %s", spec.ID, resp.StatusCode, data)
	}
	var info serve.SessionInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		tc.t.Fatal(err)
	}
	return info, resp.Header.Get("X-Backend")
}

// feed posts one batch through the gateway; fatal on anything but 202.
func (tc *testCluster) feed(id string, b serve.Batch) {
	tc.t.Helper()
	if err := tc.tryFeed(id, b); err != nil {
		tc.t.Fatal(err)
	}
}

func (tc *testCluster) tryFeed(id string, b serve.Batch) error {
	body, _ := json.Marshal(serve.IngestRequest{Batches: []serve.Batch{b}})
	resp, err := http.Post(tc.gwSrv.URL+"/v1/sessions/"+id+"/measurements",
		"application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("feed %s k=%d: HTTP %d: %s", id, b.K, resp.StatusCode, data)
	}
	return nil
}

// records reads the session's full SSE estimate stream through the gateway
// (the stream replays history, so calling after completion yields the whole
// trace).
func (tc *testCluster) records(id string) []trace.Record {
	tc.t.Helper()
	resp, err := http.Get(tc.gwSrv.URL + "/v1/sessions/" + id + "/estimates")
	if err != nil {
		tc.t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		tc.t.Fatalf("estimates %s: HTTP %d: %s", id, resp.StatusCode, data)
	}
	var out []trace.Record
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	event, data := "", ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if event == "estimate" {
				var rec trace.Record
				if err := json.Unmarshal([]byte(data), &rec); err != nil {
					tc.t.Fatalf("bad estimate event: %v", err)
				}
				out = append(out, rec)
			}
			if event == "done" {
				return out
			}
			event, data = "", ""
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = strings.TrimPrefix(line, "data: ")
		}
	}
	tc.t.Fatalf("estimate stream for %s ended without done event (%d records)", id, len(out))
	return nil
}

// info GETs session info through the gateway.
func (tc *testCluster) info(id string) (serve.SessionInfo, string, int) {
	tc.t.Helper()
	resp, err := http.Get(tc.gwSrv.URL + "/v1/sessions/" + id)
	if err != nil {
		tc.t.Fatal(err)
	}
	defer resp.Body.Close()
	var info serve.SessionInfo
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
			tc.t.Fatal(err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return info, resp.Header.Get("X-Backend"), resp.StatusCode
}

// TestRoutesToOwner: every created session lands on the backend the ring
// names as its owner, and info requests route back to the same place.
func TestRoutesToOwner(t *testing.T) {
	tc := newTestCluster(t, 3)
	owners := make(map[string]int)
	for i := 0; i < 12; i++ {
		id := fmt.Sprintf("route-%d", i)
		_, backend := tc.create(testSpec(id, 4, uint64(i+1)))
		want, ok := tc.gw.Ring().Owner(id)
		if !ok || backend != want.Name {
			t.Fatalf("session %s created on %q, ring owner is %q", id, backend, want.Name)
		}
		_, again, status := tc.info(id)
		if status != http.StatusOK || again != backend {
			t.Fatalf("info for %s: HTTP %d via %q, created on %q", id, status, again, backend)
		}
		owners[backend]++
	}
	if len(owners) < 2 {
		t.Fatalf("12 sessions all landed on one backend: %v", owners)
	}
}

// TestAssignsSessionID: a spec without an ID gets a gateway-assigned one,
// and the session is subsequently routable by it.
func TestAssignsSessionID(t *testing.T) {
	tc := newTestCluster(t, 3)
	info, _ := tc.create(testSpec("", 4, 7))
	if info.ID == "" {
		t.Fatal("gateway returned a session with no ID")
	}
	if _, _, status := tc.info(info.ID); status != http.StatusOK {
		t.Fatalf("assigned session %s not routable: HTTP %d", info.ID, status)
	}
}

// TestFallthroughFindsDisplacedSession: a session living on a backend that
// is NOT its ring owner (created behind the gateway's back) is still
// reachable — the 404 at the owner falls through the chain.
func TestFallthroughFindsDisplacedSession(t *testing.T) {
	tc := newTestCluster(t, 3)
	const id = "displaced-1"
	owner, _ := tc.gw.Ring().Owner(id)
	var other string
	for _, n := range tc.names {
		if n != owner.Name {
			other = n
			break
		}
	}
	if _, err := tc.mgrs[other].Create(testSpec(id, 4, 3)); err != nil {
		t.Fatal(err)
	}
	_, backend, status := tc.info(id)
	if status != http.StatusOK {
		t.Fatalf("displaced session not found: HTTP %d", status)
	}
	if backend != other {
		t.Fatalf("found on %q, lives on %q", backend, other)
	}
}

// TestMissingSessionIs404: a session that exists nowhere 404s (after the
// migration-race re-passes).
func TestMissingSessionIs404(t *testing.T) {
	tc := newTestCluster(t, 2)
	if _, _, status := tc.info("never-created"); status != http.StatusNotFound {
		t.Fatalf("missing session: HTTP %d, want 404", status)
	}
}

// TestRequestIDPropagation: a caller-supplied X-Request-Id comes back on the
// gateway response, and a gateway-minted one appears when absent — including
// inside error bodies produced by the backend.
func TestRequestIDPropagation(t *testing.T) {
	tc := newTestCluster(t, 2)
	req, _ := http.NewRequest(http.MethodGet, tc.gwSrv.URL+"/v1/sessions/nope", nil)
	req.Header.Set("X-Request-Id", "trace-me-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "trace-me-42" {
		t.Fatalf("request id not echoed: %q", got)
	}
	var eb struct {
		RequestID string `json:"request_id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	if eb.RequestID != "trace-me-42" {
		t.Fatalf("error body request_id = %q, want trace-me-42", eb.RequestID)
	}

	resp2, err := http.Get(tc.gwSrv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.Header.Get("X-Request-Id") == "" {
		t.Fatal("gateway did not mint a request id")
	}
}

// TestClusterTopology: /cluster reports every member with a session census.
func TestClusterTopology(t *testing.T) {
	tc := newTestCluster(t, 3)
	for i := 0; i < 6; i++ {
		tc.create(testSpec(fmt.Sprintf("topo-%d", i), 4, uint64(i+1)))
	}
	resp, err := http.Get(tc.gwSrv.URL + "/cluster")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var info struct {
		Eligible int `json:"eligible_backends"`
		Members  []ring.MemberInfo
		Sessions map[string]int `json:"sessions_per_backend"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	if info.Eligible != 3 || len(info.Members) != 3 {
		t.Fatalf("cluster reports %d eligible / %d members, want 3/3", info.Eligible, len(info.Members))
	}
	total := 0
	for _, n := range info.Sessions {
		if n < 0 {
			t.Fatalf("unreachable backend in census: %v", info.Sessions)
		}
		total += n
	}
	if total != 6 {
		t.Fatalf("census counts %d sessions, want 6 (%v)", total, info.Sessions)
	}
}

// TestAggregatedMetrics: the gateway /metrics carries its own counters plus
// backend sums.
func TestAggregatedMetrics(t *testing.T) {
	tc := newTestCluster(t, 2)
	spec := testSpec("met-1", 2, 5)
	tc.create(spec)
	batches, err := serve.Observations(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range batches {
		tc.feed(spec.ID, b)
	}
	tc.records(spec.ID) // wait for completion

	resp, err := http.Get(tc.gwSrv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	text := string(data)
	for _, want := range []string{
		"cdpfgw_requests_total",
		"cdpfgw_migrated_sessions_total 0",
		"cdpfgw_retry_exhausted_total",
		"cdpfgw_breaker_skips_total",
		`cdpfgw_breaker_state{backend="b0"} 0`,
		`cdpfgw_breaker_opens_total{backend="b1"} 0`,
		"cdpfgw_parked_requests_total",
		"cdpfgw_park_timeouts_total",
		"cdpfgw_park_latency_seconds_bucket{le=\"+Inf\"}",
		"cdpfgw_park_latency_seconds_count",
		"cdpfgw_stream_aborts_total",
		"cdpfd_sessions_created_total 1",
		fmt.Sprintf("cdpfd_steps_total %d", len(batches)),
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("gateway /metrics missing %q:\n%s", want, text)
		}
	}
}
