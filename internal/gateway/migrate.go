package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/serve"
)

// MigrationReport is what one backend evacuation returns: which sessions
// moved where, which were already gone, and which failed.
type MigrationReport struct {
	Backend string            `json:"backend"`
	Moved   map[string]string `json:"moved"`             // session id -> new backend
	Skipped []string          `json:"skipped,omitempty"` // finished or already gone
	Errors  []string          `json:"errors,omitempty"`
}

// handleMigrate runs an explicit evacuation: POST /admin/migrate?backend=NAME
// marks the backend ineligible and moves every live session it holds to its
// new ring owner. The call is synchronous — a 200 means every session is
// re-homed (or listed under errors).
func (g *Gateway) handleMigrate(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("backend")
	if name == "" {
		g.writeError(w, http.StatusBadRequest, "missing ?backend=NAME")
		return
	}
	rep, err := g.MigrateBackend(r.Context(), name)
	if err != nil {
		g.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	status := http.StatusOK
	if len(rep.Errors) > 0 {
		status = http.StatusBadGateway
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(rep)
}

// MigrateBackend evacuates every live session off the named backend:
//
//  1. Mark it evacuating — the ring stops routing new ownership to it, so
//     every session's Owner() answer is already its post-migration home.
//  2. Enumerate its live sessions (/admin/sessions).
//  3. Per session: hold gateway traffic for it, export at a step boundary
//     (retrying 409 "busy" until the queue drains), import the snapshot
//     bytes into the session's new owner, release the hold.
//
// Export removes the session from the source before Import lands it at the
// target; the hold is what keeps that window invisible to clients. A second
// evacuation of the same backend is a no-op (the first pass owns it).
func (g *Gateway) MigrateBackend(ctx context.Context, name string) (*MigrationReport, error) {
	src, ok := g.ring.Lookup(name)
	if !ok {
		return nil, fmt.Errorf("no backend %q in the ring", name)
	}
	g.mu.Lock()
	if g.evacuated[name] {
		g.mu.Unlock()
		return &MigrationReport{Backend: name, Moved: map[string]string{}}, nil
	}
	g.evacuated[name] = true
	g.mu.Unlock()

	g.ring.SetEvacuating(name, true)
	g.met.migrations.Add(1)

	ids, err := g.listSessions(ctx, src.Addr)
	if err != nil {
		return nil, fmt.Errorf("enumerating sessions on %s: %w", name, err)
	}
	rep := &MigrationReport{Backend: name, Moved: map[string]string{}}
	for _, id := range ids {
		target, moveErr := g.migrateSession(ctx, src.Addr, name, id)
		switch {
		case moveErr == errSessionGone:
			rep.Skipped = append(rep.Skipped, id)
		case moveErr != nil:
			rep.Errors = append(rep.Errors, fmt.Sprintf("%s: %v", id, moveErr))
		default:
			rep.Moved[id] = target
			g.met.migratedSessions.Add(1)
		}
	}
	return rep, nil
}

// errSessionGone marks a session that finished or left between enumeration
// and export — nothing to move.
var errSessionGone = fmt.Errorf("session already gone")

// migrateSession moves one session and returns the receiving backend's name.
func (g *Gateway) migrateSession(ctx context.Context, srcAddr, srcName, id string) (string, error) {
	release := g.beginMigration(id)
	defer release()

	snap, err := g.exportSession(ctx, srcAddr, id)
	if err != nil {
		return "", err
	}
	// The session is now nowhere but in our hands: import it into the first
	// willing backend in ring order (the owner, then fallbacks — a target
	// that is full or draining answers non-200 and the next one is tried).
	var lastErr error
	for _, t := range g.ring.Route(id) {
		if t.Name == srcName {
			continue
		}
		if err := g.importSession(ctx, t.Addr, snap); err != nil {
			lastErr = fmt.Errorf("import into %s: %w", t.Name, err)
			continue
		}
		return t.Name, nil
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("no import target in the ring")
	}
	return "", lastErr
}

// beginMigration installs the hold that parks gateway traffic for a session
// while its handoff is in flight; the returned func releases it.
func (g *Gateway) beginMigration(id string) func() {
	g.mu.Lock()
	ch := make(chan struct{})
	g.migrating[id] = ch
	g.mu.Unlock()
	return func() {
		g.mu.Lock()
		if g.migrating[id] == ch {
			delete(g.migrating, id)
		}
		g.mu.Unlock()
		close(ch)
	}
}

// waitMigration blocks while the session has a handoff in flight.
func (g *Gateway) waitMigration(ctx context.Context, id string) error {
	for {
		g.mu.Lock()
		ch, ok := g.migrating[id]
		g.mu.Unlock()
		if !ok {
			return nil
		}
		g.met.holds.Add(1)
		select {
		case <-ch:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// exportSession POSTs the export endpoint until the session is quiescent: a
// 409 means batches are still queued (the shard will step them in
// microseconds to milliseconds), so retry under the shared full-jitter
// backoff until ExportRetry runs out.
func (g *Gateway) exportSession(ctx context.Context, addr, id string) ([]byte, error) {
	deadline := time.Now().Add(g.exportRetry)
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			addr+"/admin/sessions/"+id+"/export", nil)
		if err != nil {
			return nil, err
		}
		resp, err := g.client.Do(req)
		if err != nil {
			return nil, fmt.Errorf("export: %w", err)
		}
		switch resp.StatusCode {
		case http.StatusOK:
			data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
			resp.Body.Close()
			if err != nil {
				return nil, fmt.Errorf("export body: %w", err)
			}
			return data, nil
		case http.StatusNotFound, http.StatusGone:
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			return nil, errSessionGone
		case http.StatusConflict:
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if time.Now().After(deadline) {
				return nil, fmt.Errorf("export: session stayed busy past %v", g.exportRetry)
			}
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(g.exportBackoff.backoff(attempt)):
			}
		default:
			data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			return nil, fmt.Errorf("export: HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(data))
		}
	}
}

// importSession POSTs snapshot bytes into a backend.
func (g *Gateway) importSession(ctx context.Context, addr string, snap []byte) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		addr+"/admin/sessions/import", bytes.NewReader(snap))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := g.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(data))
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}

// listSessions enumerates a backend's live sessions.
func (g *Gateway) listSessions(ctx context.Context, addr string) ([]string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+"/admin/sessions", nil)
	if err != nil {
		return nil, err
	}
	resp, err := g.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(data))
	}
	var list serve.SessionList
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		return nil, err
	}
	return list.Sessions, nil
}
