// Package gateway is the stateless cluster front door for cdpfd: it owns no
// session state of its own, routing every session-scoped request to the
// backend the ring says owns the session and falling through the ring's
// fallback chain when the owner does not have it (yet). Because routing is
// pure rendezvous hashing over backend names, any number of gateways in
// front of the same fleet route identically without coordinating.
//
// The gateway is also the migration driver: evacuating a backend means
// marking it ineligible in the ring, exporting each of its sessions at a
// step boundary, and importing the snapshot bytes into the session's new
// owner. Requests for a session caught mid-handoff are held (not failed)
// until the handoff lands, so clients observe added latency, never a lost
// session.
//
// Against unannounced failure the data path is defended in depth: a
// per-backend circuit breaker stops hammering a dead backend, every retry
// sleeps under an exponential-backoff-with-full-jitter budget, and when the
// ring is unsettled — some member Down or Recovering — requests for possibly
// affected sessions park until the fleet heals (bounded by ParkTimeout)
// instead of surfacing transient 404s/503s. A backend crash therefore costs
// its clients latency, not errors.
package gateway

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ring"
	"repro/internal/serve"
	"repro/internal/version"
)

// Config wires a Gateway.
type Config struct {
	// Ring is the backend membership; required.
	Ring *ring.Ring
	// Client performs all proxied requests. nil defaults to a client with no
	// global timeout (SSE streams live arbitrarily long) but a response-
	// header timeout, so a blackholed backend cannot hang an attempt forever.
	Client *http.Client
	// ExportRetry bounds how long one session export is retried while the
	// session still has queued batches (409). 0 defaults to 15s.
	ExportRetry time.Duration
	// ExportBackoff / ExportBackoffMax shape the 409-retry backoff inside
	// one export (full jitter). Defaults 2ms / 50ms.
	ExportBackoff    time.Duration
	ExportBackoffMax time.Duration
	// Route is the data-path retry budget: how many times the whole route
	// chain is re-walked and how backoff between passes grows.
	// Defaults {Passes: 4, Base: 25ms, Max: 250ms}.
	Route RetryConfig
	// ParkTimeout bounds how long a request parks while the ring is
	// unsettled (a member Down or Recovering) before failing. 0 defaults
	// to 30s.
	ParkTimeout time.Duration
	// AttemptTimeout bounds one buffered proxy attempt (not SSE streams).
	// 0 defaults to 10s.
	AttemptTimeout time.Duration
	// CensusTimeout bounds one backend census poll for /cluster. 0: 2s.
	CensusTimeout time.Duration
	// ScrapeTimeout bounds one backend /metrics scrape. 0: 2s.
	ScrapeTimeout time.Duration
	// Breaker tunes the per-backend circuit breakers.
	Breaker BreakerConfig
}

// Gateway is the http.Handler. All state is routing state: the ring, the
// in-flight migration holds, the breakers, and counters.
type Gateway struct {
	ring           *ring.Ring
	client         *http.Client
	exportRetry    time.Duration
	exportBackoff  RetryConfig
	route          RetryConfig
	parkTimeout    time.Duration
	attemptTimeout time.Duration
	censusTimeout  time.Duration
	scrapeTimeout  time.Duration
	breakers       map[string]*breaker
	met            metrics
	mux            *http.ServeMux

	mu        sync.Mutex
	migrating map[string]chan struct{} // session id -> closed when its handoff completes
	evacuated map[string]bool          // backend name -> evacuation ran (or is running)

	idCounter atomic.Uint64
}

// New builds a gateway over the ring.
func New(cfg Config) (*Gateway, error) {
	if cfg.Ring == nil {
		return nil, fmt.Errorf("gateway: Config.Ring is required")
	}
	g := &Gateway{
		ring:           cfg.Ring,
		client:         cfg.Client,
		exportRetry:    cfg.ExportRetry,
		route:          cfg.Route.withDefaults(4, 25*time.Millisecond, 250*time.Millisecond),
		parkTimeout:    cfg.ParkTimeout,
		attemptTimeout: cfg.AttemptTimeout,
		censusTimeout:  cfg.CensusTimeout,
		scrapeTimeout:  cfg.ScrapeTimeout,
		breakers:       make(map[string]*breaker),
		migrating:      make(map[string]chan struct{}),
		evacuated:      make(map[string]bool),
		mux:            http.NewServeMux(),
	}
	g.exportBackoff = RetryConfig{Base: cfg.ExportBackoff, Max: cfg.ExportBackoffMax}.
		withDefaults(1, 2*time.Millisecond, 50*time.Millisecond)
	if g.client == nil {
		tr := http.DefaultTransport.(*http.Transport).Clone()
		tr.ResponseHeaderTimeout = 10 * time.Second
		g.client = &http.Client{Transport: tr}
	}
	if g.exportRetry <= 0 {
		g.exportRetry = 15 * time.Second
	}
	if g.parkTimeout <= 0 {
		g.parkTimeout = 30 * time.Second
	}
	if g.attemptTimeout <= 0 {
		g.attemptTimeout = 10 * time.Second
	}
	if g.censusTimeout <= 0 {
		g.censusTimeout = 2 * time.Second
	}
	if g.scrapeTimeout <= 0 {
		g.scrapeTimeout = 2 * time.Second
	}
	for _, m := range cfg.Ring.Members() {
		g.breakers[m.Name] = newBreaker(cfg.Breaker)
	}
	g.mux.HandleFunc("POST /v1/sessions", g.handleCreate)
	g.mux.HandleFunc("GET /v1/sessions/{id}", g.handleSession)
	g.mux.HandleFunc("POST /v1/sessions/{id}/measurements", g.handleSession)
	g.mux.HandleFunc("GET /v1/sessions/{id}/estimates", g.handleEstimates)
	g.mux.HandleFunc("POST /admin/migrate", g.handleMigrate)
	g.mux.HandleFunc("GET /cluster", g.handleCluster)
	g.mux.HandleFunc("GET /healthz", g.handleHealthz)
	g.mux.HandleFunc("GET /metrics", g.handleMetrics)
	return g, nil
}

// Ring exposes the membership (the prober and tests need it).
func (g *Gateway) Ring() *ring.Ring { return g.ring }

// NoteHealth lets the health prober inform the gateway of transitions. A
// backend confirmed Ready gets its breaker force-closed: the probe is
// independent evidence the backend is back, so the data path should not wait
// out a cooldown.
func (g *Gateway) NoteHealth(name string, from, to ring.Health) {
	if to == ring.Ready {
		if br := g.breakers[name]; br != nil {
			br.reset()
		}
	}
}

func (g *Gateway) breakerFor(name string) *breaker { return g.breakers[name] }

// ServeHTTP stamps the request ID (minting one when the client sent none —
// the ID then rides every proxied hop and comes back in daemon error bodies)
// and applies the client's deadline: an X-Request-Timeout header (a Go
// duration) bounds everything done on the request's behalf, including parks
// and retries, so the client's own deadline is never overshot by gateway
// patience.
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	rid := r.Header.Get("X-Request-Id")
	if rid == "" {
		rid = serve.NewRequestID()
		r.Header.Set("X-Request-Id", rid)
	}
	w.Header().Set("X-Request-Id", rid)
	if v := r.Header.Get("X-Request-Timeout"); v != "" {
		if d, err := time.ParseDuration(v); err == nil && d > 0 {
			ctx, cancel := context.WithTimeout(r.Context(), d)
			defer cancel()
			r = r.WithContext(ctx)
		}
	}
	g.mux.ServeHTTP(w, r)
}

func (g *Gateway) writeError(w http.ResponseWriter, status int, format string, args ...interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{
		"error":      fmt.Sprintf(format, args...),
		"request_id": w.Header().Get("X-Request-Id"),
	})
}

// handleCreate decodes the spec far enough to know the session ID — routing
// needs it before the session exists. A client that omits the ID gets a
// gateway-assigned one ("g-<n>"), so ownership is still deterministic.
func (g *Gateway) handleCreate(w http.ResponseWriter, r *http.Request) {
	var spec serve.SessionSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		g.writeError(w, http.StatusBadRequest, "bad session spec: %v", err)
		return
	}
	if spec.ID == "" {
		spec.ID = fmt.Sprintf("g-%d", g.idCounter.Add(1))
	}
	body, err := json.Marshal(spec)
	if err != nil {
		g.writeError(w, http.StatusInternalServerError, "re-encoding spec: %v", err)
		return
	}
	g.forward(w, r, spec.ID, http.MethodPost, "/v1/sessions", body)
}

// handleSession proxies info and ingest requests through the route chain.
func (g *Gateway) handleSession(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 8<<20))
	if err != nil {
		g.writeError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	g.forward(w, r, id, r.Method, r.URL.Path, body)
}

// retryable503 reports whether a 503 error body came from a daemon phase the
// chain should route around (recovering/draining) rather than genuine
// backpressure (full shard queue) that must reach the client so its own
// retry loop backs off. The daemon's phase 503s open with the phase word
// ("recovering: replaying session logs", "server is draining"); matching on
// the message *prefix* keeps a session whose ID happens to contain
// "recovering" from turning its backpressure errors into silent re-routes.
func retryable503(body []byte) bool {
	msg := string(body)
	var eb struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &eb); err == nil && eb.Error != "" {
		msg = eb.Error
	}
	msg = strings.TrimSpace(msg)
	return strings.HasPrefix(msg, serve.PhaseRecovering) ||
		strings.HasPrefix(msg, serve.PhaseDraining) ||
		strings.HasPrefix(msg, "server is "+serve.PhaseDraining)
}

// passOutcome summarizes one walk of the route chain for the park decision.
type passOutcome struct {
	served     bool           // an authoritative response was written
	last       *backendResult // most recent non-authoritative response (404/phase-503)
	connErrs   int            // connection-level failures this pass
	skips      int            // backends skipped by an open breaker
	recovering bool           // some backend answered "recovering"
}

// parkable reports whether this pass's failure smells like a healing fleet
// (crash, recovery, breaker shadow) rather than a genuinely absent session.
func (o passOutcome) parkable(unsettledRing bool) bool {
	return unsettledRing || o.connErrs > 0 || o.skips > 0 || o.recovering
}

// forward tries the ring's route chain for key until a backend gives an
// authoritative answer. Per attempt:
//
//   - breaker open: skip the backend
//   - connection error: next backend (feeds the breaker; the prober will
//     mark it Down)
//   - 404: next backend — during migration the session may live on a
//     fallback; only when every backend 404s *and the ring is settled* is
//     the 404 real
//   - 503 recovering/draining: next backend
//   - anything else (including 410 gone, 429 and backpressure 503s): final
//
// When a pass fails while the fleet looks unhealthy, the request parks:
// it keeps re-walking the chain under the jittered backoff until the fleet
// heals or ParkTimeout expires. Requests for a session mid-handoff wait for
// the handoff first.
func (g *Gateway) forward(w http.ResponseWriter, r *http.Request, key, method, path string, body []byte) {
	g.met.requests.Add(1)
	start := time.Now()
	parkDeadline := start.Add(g.parkTimeout)
	parked := false
	var last *backendResult
	for pass := 0; ; pass++ {
		if err := g.waitMigration(r.Context(), key); err != nil {
			g.writeError(w, http.StatusServiceUnavailable, "session %s: interrupted waiting for migration: %v", key, err)
			return
		}
		out := g.walkChain(r, key, method, path, body, pass, func(res *backendResult) {
			if parked {
				g.met.observePark(time.Since(start))
			}
			res.write(w)
		})
		if out.served {
			return
		}
		if out.last != nil {
			last = out.last
		}
		parking := out.parkable(g.ring.Unsettled())
		if parking && !parked {
			parked = true
			g.met.parked.Add(1)
		}
		switch {
		case parking && time.Now().Before(parkDeadline):
			// keep passing; backoff below
		case pass+1 < g.route.Passes:
			// plain retry budget (settled ring, e.g. migration race)
		default:
			if parking {
				// The fleet never healed: the session's owner is still
				// unavailable, so a fallback's 404 is not authoritative —
				// answer 503, the honest "try again later".
				g.met.parkTimeouts.Add(1)
				g.met.noBackend.Add(1)
				g.writeError(w, http.StatusServiceUnavailable,
					"session %s: backend unavailable past park timeout", key)
				return
			}
			g.met.retryExhausted.Add(1)
			if last != nil {
				last.write(w)
				return
			}
			g.met.noBackend.Add(1)
			g.writeError(w, http.StatusServiceUnavailable, "no backend answered for session %s", key)
			return
		}
		select {
		case <-r.Context().Done():
			if last != nil {
				last.write(w)
				return
			}
			g.met.noBackend.Add(1)
			g.writeError(w, http.StatusServiceUnavailable, "no backend answered for session %s", key)
			return
		case <-time.After(g.route.backoff(pass)):
		}
	}
}

// walkChain runs one pass over the route chain. An authoritative response is
// handed to sink and the zero outcome is returned; otherwise the outcome
// describes why the pass failed.
func (g *Gateway) walkChain(r *http.Request, key, method, path string, body []byte, pass int, sink func(*backendResult)) passOutcome {
	var out passOutcome
	for i, b := range g.ring.Route(key) {
		br := g.breakerFor(b.Name)
		if br != nil && !br.allow() {
			out.skips++
			g.met.breakerSkips.Add(1)
			continue
		}
		if i > 0 || pass > 0 {
			g.met.retries.Add(1)
		}
		res, err := g.do(r, b, method, path, body)
		if err != nil {
			out.connErrs++
			if br != nil {
				br.fail()
			}
			continue
		}
		if br != nil {
			br.succeed()
		}
		switch {
		case res.status == http.StatusNotFound:
			out.last = res
			continue
		case res.status == http.StatusServiceUnavailable && retryable503(res.body):
			out.last = res
			if strings.Contains(string(res.body), serve.PhaseRecovering) {
				out.recovering = true
			}
			continue
		default:
			sink(res)
			return passOutcome{served: true}
		}
	}
	return out
}

// backendResult is one buffered proxied response.
type backendResult struct {
	backend string
	status  int
	ctype   string
	body    []byte
}

func (res *backendResult) write(w http.ResponseWriter) {
	if res.ctype != "" {
		w.Header().Set("Content-Type", res.ctype)
	}
	w.Header().Set("X-Backend", res.backend)
	w.WriteHeader(res.status)
	_, _ = w.Write(res.body)
}

// do performs one buffered attempt against one backend, bounded by
// AttemptTimeout so one hung backend cannot eat the whole retry budget.
func (g *Gateway) do(r *http.Request, b ring.Backend, method, path string, body []byte) (*backendResult, error) {
	ctx, cancel := context.WithTimeout(r.Context(), g.attemptTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, method, b.Addr+path, strings.NewReader(string(body)))
	if err != nil {
		return nil, err
	}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		req.Header.Set("Content-Type", ct)
	}
	req.Header.Set("X-Request-Id", r.Header.Get("X-Request-Id"))
	if v := r.Header.Get("X-Request-Timeout"); v != "" {
		req.Header.Set("X-Request-Timeout", v)
	}
	resp, err := g.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, err
	}
	return &backendResult{
		backend: b.Name,
		status:  resp.StatusCode,
		ctype:   resp.Header.Get("Content-Type"),
		body:    data,
	}, nil
}

// handleEstimates proxies the SSE stream. Streams cannot be buffered and
// replayed, so the fallback chain applies only until a backend accepts the
// subscription; after that the stream is welded to that backend. A stream
// cut by migration ends cleanly and the client resubscribes through the
// gateway, landing on the new owner, whose stream replays the full record
// history first — no estimate is lost. A stream cut by *failure* (the
// backend died, or a proxy truncated the response) is aborted mid-body so
// the client sees a transport error, never a silently shortened stream that
// could pass for complete.
func (g *Gateway) handleEstimates(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	g.met.requests.Add(1)
	fl, ok := w.(http.Flusher)
	if !ok {
		g.writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	start := time.Now()
	parkDeadline := start.Add(g.parkTimeout)
	parked := false
	for pass := 0; ; pass++ {
		if err := g.waitMigration(r.Context(), id); err != nil {
			g.writeError(w, http.StatusServiceUnavailable, "session %s: interrupted waiting for migration: %v", id, err)
			return
		}
		var out passOutcome
		for i, b := range g.ring.Route(id) {
			br := g.breakerFor(b.Name)
			if br != nil && !br.allow() {
				out.skips++
				g.met.breakerSkips.Add(1)
				continue
			}
			if i > 0 || pass > 0 {
				g.met.retries.Add(1)
			}
			req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, b.Addr+r.URL.Path, nil)
			if err != nil {
				continue
			}
			req.Header.Set("X-Request-Id", r.Header.Get("X-Request-Id"))
			resp, err := g.client.Do(req)
			if err != nil {
				out.connErrs++
				if br != nil {
					br.fail()
				}
				continue
			}
			if br != nil {
				br.succeed()
			}
			if resp.StatusCode != http.StatusOK {
				data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
				resp.Body.Close()
				if resp.StatusCode == http.StatusNotFound {
					out.last = &backendResult{backend: b.Name, status: resp.StatusCode, body: data}
					continue
				}
				if resp.StatusCode == http.StatusServiceUnavailable && retryable503(data) {
					out.last = &backendResult{backend: b.Name, status: resp.StatusCode, body: data}
					if strings.Contains(string(data), serve.PhaseRecovering) {
						out.recovering = true
					}
					continue
				}
				w.Header().Set("Content-Type", resp.Header.Get("Content-Type"))
				w.Header().Set("X-Backend", b.Name)
				w.WriteHeader(resp.StatusCode)
				_, _ = w.Write(data)
				return
			}
			if parked {
				g.met.observePark(time.Since(start))
			}
			w.Header().Set("Content-Type", resp.Header.Get("Content-Type"))
			w.Header().Set("X-Backend", b.Name)
			w.WriteHeader(http.StatusOK)
			fl.Flush()
			g.weld(w, fl, resp.Body)
			return
		}
		parking := out.parkable(g.ring.Unsettled())
		if parking && !parked {
			parked = true
			g.met.parked.Add(1)
		}
		switch {
		case parking && time.Now().Before(parkDeadline):
		case pass+1 < g.route.Passes:
		default:
			if parked && parking {
				g.met.parkTimeouts.Add(1)
			}
			if out.last != nil && !parking {
				g.writeError(w, http.StatusNotFound, "no backend has session %s", id)
				return
			}
			g.writeError(w, http.StatusServiceUnavailable, "no backend reachable for session %s", id)
			return
		}
		select {
		case <-r.Context().Done():
			g.writeError(w, http.StatusServiceUnavailable, "session %s: %v", id, r.Context().Err())
			return
		case <-time.After(g.route.backoff(pass)):
		}
	}
}

// weld copies the accepted SSE stream to the client. The response status is
// already written, so a backend-side read failure cannot be reported in
// band; aborting the handler resets the client connection instead, making
// the cut unmistakable. Clean EOF ends the stream normally (the daemon
// always terminates a finished stream with its `done` event, which the
// client checks for).
func (g *Gateway) weld(w http.ResponseWriter, fl http.Flusher, from io.ReadCloser) {
	defer from.Close()
	buf := make([]byte, 16<<10)
	for {
		n, err := from.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return // client went away
			}
			fl.Flush()
		}
		if err == io.EOF {
			return
		}
		if err != nil {
			g.met.streamAborts.Add(1)
			panic(http.ErrAbortHandler)
		}
	}
}

// clusterInfo is the body of GET /cluster.
type clusterInfo struct {
	Version  string            `json:"version"`
	Eligible int               `json:"eligible_backends"`
	Members  []ring.MemberInfo `json:"members"`
	Sessions map[string]int    `json:"sessions_per_backend"`
	Breakers map[string]string `json:"breakers"`
}

// handleCluster reports the gateway's view of the fleet: member health,
// breaker states, plus a live per-backend session census (polled, best
// effort — an unreachable backend reports -1).
func (g *Gateway) handleCluster(w http.ResponseWriter, r *http.Request) {
	members := g.ring.Members()
	info := clusterInfo{
		Version:  version.String(),
		Eligible: g.ring.EligibleCount(),
		Members:  members,
		Sessions: make(map[string]int, len(members)),
		Breakers: make(map[string]string, len(members)),
	}
	for name, br := range g.breakers {
		info.Breakers[name] = br.current().String()
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	for _, m := range members {
		wg.Add(1)
		go func(m ring.MemberInfo) {
			defer wg.Done()
			n := g.countSessions(r.Context(), m.Addr)
			mu.Lock()
			info.Sessions[m.Name] = n
			mu.Unlock()
		}(m)
	}
	wg.Wait()
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(info)
}

// countSessions polls one backend's live session count; -1 when unreachable.
func (g *Gateway) countSessions(ctx context.Context, addr string) int {
	ctx, cancel := context.WithTimeout(ctx, g.censusTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+"/admin/sessions", nil)
	if err != nil {
		return -1
	}
	resp, err := g.client.Do(req)
	if err != nil {
		return -1
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return -1
	}
	var list serve.SessionList
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		return -1
	}
	return len(list.Sessions)
}

// handleHealthz: the gateway is ready while at least one backend can own
// sessions. The body mirrors the daemons' phase vocabulary so the same
// polling loops work against either tier.
func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if g.ring.EligibleCount() == 0 {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "degraded")
		return
	}
	fmt.Fprintln(w, serve.PhaseReady)
}
