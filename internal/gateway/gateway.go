// Package gateway is the stateless cluster front door for cdpfd: it owns no
// session state of its own, routing every session-scoped request to the
// backend the ring says owns the session and falling through the ring's
// fallback chain when the owner does not have it (yet). Because routing is
// pure rendezvous hashing over backend names, any number of gateways in
// front of the same fleet route identically without coordinating.
//
// The gateway is also the migration driver: evacuating a backend means
// marking it ineligible in the ring, exporting each of its sessions at a
// step boundary, and importing the snapshot bytes into the session's new
// owner. Requests for a session caught mid-handoff are held (not failed)
// until the handoff lands, so clients observe added latency, never a lost
// session.
package gateway

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ring"
	"repro/internal/serve"
	"repro/internal/version"
)

// Config wires a Gateway.
type Config struct {
	// Ring is the backend membership; required.
	Ring *ring.Ring
	// Client performs all proxied requests. nil defaults to a client with
	// no global timeout (SSE streams live arbitrarily long); control-plane
	// calls bound themselves with request contexts.
	Client *http.Client
	// ExportRetry bounds how long one session export is retried while the
	// session still has queued batches (409). 0 defaults to 15s.
	ExportRetry time.Duration
}

// Gateway is the http.Handler. All state is routing state: the ring, the
// in-flight migration holds, and counters.
type Gateway struct {
	ring        *ring.Ring
	client      *http.Client
	exportRetry time.Duration
	met         metrics
	mux         *http.ServeMux

	mu        sync.Mutex
	migrating map[string]chan struct{} // session id -> closed when its handoff completes
	evacuated map[string]bool          // backend name -> evacuation ran (or is running)

	idCounter atomic.Uint64
}

// New builds a gateway over the ring.
func New(cfg Config) (*Gateway, error) {
	if cfg.Ring == nil {
		return nil, fmt.Errorf("gateway: Config.Ring is required")
	}
	g := &Gateway{
		ring:        cfg.Ring,
		client:      cfg.Client,
		exportRetry: cfg.ExportRetry,
		migrating:   make(map[string]chan struct{}),
		evacuated:   make(map[string]bool),
		mux:         http.NewServeMux(),
	}
	if g.client == nil {
		g.client = &http.Client{}
	}
	if g.exportRetry <= 0 {
		g.exportRetry = 15 * time.Second
	}
	g.mux.HandleFunc("POST /v1/sessions", g.handleCreate)
	g.mux.HandleFunc("GET /v1/sessions/{id}", g.handleSession)
	g.mux.HandleFunc("POST /v1/sessions/{id}/measurements", g.handleSession)
	g.mux.HandleFunc("GET /v1/sessions/{id}/estimates", g.handleEstimates)
	g.mux.HandleFunc("POST /admin/migrate", g.handleMigrate)
	g.mux.HandleFunc("GET /cluster", g.handleCluster)
	g.mux.HandleFunc("GET /healthz", g.handleHealthz)
	g.mux.HandleFunc("GET /metrics", g.handleMetrics)
	return g, nil
}

// Ring exposes the membership (the prober and tests need it).
func (g *Gateway) Ring() *ring.Ring { return g.ring }

// ServeHTTP stamps the request ID (minting one when the client sent none —
// the ID then rides every proxied hop and comes back in daemon error bodies)
// and dispatches.
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	rid := r.Header.Get("X-Request-Id")
	if rid == "" {
		rid = serve.NewRequestID()
		r.Header.Set("X-Request-Id", rid)
	}
	w.Header().Set("X-Request-Id", rid)
	g.mux.ServeHTTP(w, r)
}

func (g *Gateway) writeError(w http.ResponseWriter, status int, format string, args ...interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{
		"error":      fmt.Sprintf(format, args...),
		"request_id": w.Header().Get("X-Request-Id"),
	})
}

// handleCreate decodes the spec far enough to know the session ID — routing
// needs it before the session exists. A client that omits the ID gets a
// gateway-assigned one ("g-<n>"), so ownership is still deterministic.
func (g *Gateway) handleCreate(w http.ResponseWriter, r *http.Request) {
	var spec serve.SessionSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		g.writeError(w, http.StatusBadRequest, "bad session spec: %v", err)
		return
	}
	if spec.ID == "" {
		spec.ID = fmt.Sprintf("g-%d", g.idCounter.Add(1))
	}
	body, err := json.Marshal(spec)
	if err != nil {
		g.writeError(w, http.StatusInternalServerError, "re-encoding spec: %v", err)
		return
	}
	g.forward(w, r, spec.ID, http.MethodPost, "/v1/sessions", body)
}

// handleSession proxies info and ingest requests through the route chain.
func (g *Gateway) handleSession(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 8<<20))
	if err != nil {
		g.writeError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	g.forward(w, r, id, r.Method, r.URL.Path, body)
}

// retryable503 reports whether a 503 error body came from a daemon phase the
// chain should route around (recovering/draining) rather than genuine
// backpressure (full shard queue) that must reach the client so its own
// retry loop backs off.
func retryable503(body []byte) bool {
	s := string(body)
	return strings.Contains(s, "recovering") || strings.Contains(s, "draining")
}

// chainPasses bounds how many times forward re-walks the whole route chain
// when no backend gave an authoritative answer. A session in the export→
// import window of a live handoff is momentarily on no backend at all; one
// re-pass after a short wait finds it at its new home. Genuine misses (a
// session that never existed) pay chainPasses×chainPassWait of extra latency
// before their 404 — a deliberate trade for never surfacing a transient 404
// mid-migration.
const (
	chainPasses   = 4
	chainPassWait = 25 * time.Millisecond
)

// forward tries the ring's route chain for key until a backend gives an
// authoritative answer. Per attempt:
//
//   - connection error: next backend (and the prober will mark it Down)
//   - 404: next backend — during migration the session may live on a
//     fallback; only when every backend 404s is the 404 real
//   - 503 recovering/draining: next backend
//   - anything else (including 410 gone, 429 and backpressure 503s): final
//
// Requests for a session currently mid-handoff wait for the handoff first.
func (g *Gateway) forward(w http.ResponseWriter, r *http.Request, key, method, path string, body []byte) {
	g.met.requests.Add(1)
	var last *backendResult
	for pass := 0; pass < chainPasses; pass++ {
		if err := g.waitMigration(r.Context(), key); err != nil {
			g.writeError(w, http.StatusServiceUnavailable, "session %s: interrupted waiting for migration: %v", key, err)
			return
		}
		for i, b := range g.ring.Route(key) {
			if i > 0 || pass > 0 {
				g.met.retries.Add(1)
			}
			res, err := g.do(r, b, method, path, body)
			if err != nil {
				continue
			}
			switch {
			case res.status == http.StatusNotFound,
				res.status == http.StatusServiceUnavailable && retryable503(res.body):
				last = res
				continue
			default:
				res.write(w)
				return
			}
		}
		select {
		case <-r.Context().Done():
			pass = chainPasses // fall out with whatever we have
		case <-time.After(chainPassWait):
		}
	}
	if last != nil {
		last.write(w)
		return
	}
	g.met.noBackend.Add(1)
	g.writeError(w, http.StatusServiceUnavailable, "no backend answered for session %s", key)
}

// backendResult is one buffered proxied response.
type backendResult struct {
	backend string
	status  int
	ctype   string
	body    []byte
}

func (res *backendResult) write(w http.ResponseWriter) {
	if res.ctype != "" {
		w.Header().Set("Content-Type", res.ctype)
	}
	w.Header().Set("X-Backend", res.backend)
	w.WriteHeader(res.status)
	_, _ = w.Write(res.body)
}

// do performs one buffered attempt against one backend.
func (g *Gateway) do(r *http.Request, b ring.Backend, method, path string, body []byte) (*backendResult, error) {
	req, err := http.NewRequestWithContext(r.Context(), method, b.Addr+path, strings.NewReader(string(body)))
	if err != nil {
		return nil, err
	}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		req.Header.Set("Content-Type", ct)
	}
	req.Header.Set("X-Request-Id", r.Header.Get("X-Request-Id"))
	resp, err := g.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, err
	}
	return &backendResult{
		backend: b.Name,
		status:  resp.StatusCode,
		ctype:   resp.Header.Get("Content-Type"),
		body:    data,
	}, nil
}

// handleEstimates proxies the SSE stream. Streams cannot be buffered and
// replayed, so the fallback chain applies only until a backend accepts the
// subscription; after that the stream is welded to that backend. A stream
// cut by migration ends cleanly and the client resubscribes through the
// gateway, landing on the new owner, whose stream replays the full record
// history first — no estimate is lost.
func (g *Gateway) handleEstimates(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := g.waitMigration(r.Context(), id); err != nil {
		g.writeError(w, http.StatusServiceUnavailable, "session %s: interrupted waiting for migration: %v", id, err)
		return
	}
	g.met.requests.Add(1)
	fl, ok := w.(http.Flusher)
	if !ok {
		g.writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	for pass := 0; pass < chainPasses; pass++ {
		if err := g.waitMigration(r.Context(), id); err != nil {
			g.writeError(w, http.StatusServiceUnavailable, "session %s: interrupted waiting for migration: %v", id, err)
			return
		}
		for i, b := range g.ring.Route(id) {
			if i > 0 || pass > 0 {
				g.met.retries.Add(1)
			}
			req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, b.Addr+r.URL.Path, nil)
			if err != nil {
				continue
			}
			req.Header.Set("X-Request-Id", r.Header.Get("X-Request-Id"))
			resp, err := g.client.Do(req)
			if err != nil {
				continue
			}
			if resp.StatusCode != http.StatusOK {
				data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
				resp.Body.Close()
				if resp.StatusCode == http.StatusNotFound ||
					(resp.StatusCode == http.StatusServiceUnavailable && retryable503(data)) {
					continue
				}
				w.Header().Set("Content-Type", resp.Header.Get("Content-Type"))
				w.Header().Set("X-Backend", b.Name)
				w.WriteHeader(resp.StatusCode)
				_, _ = w.Write(data)
				return
			}
			w.Header().Set("Content-Type", resp.Header.Get("Content-Type"))
			w.Header().Set("X-Backend", b.Name)
			w.WriteHeader(http.StatusOK)
			fl.Flush()
			buf := make([]byte, 16<<10)
			for {
				n, err := resp.Body.Read(buf)
				if n > 0 {
					if _, werr := w.Write(buf[:n]); werr != nil {
						resp.Body.Close()
						return
					}
					fl.Flush()
				}
				if err != nil {
					resp.Body.Close()
					return
				}
			}
		}
		select {
		case <-r.Context().Done():
			pass = chainPasses
		case <-time.After(chainPassWait):
		}
	}
	g.writeError(w, http.StatusNotFound, "no backend has session %s", id)
}

// clusterInfo is the body of GET /cluster.
type clusterInfo struct {
	Version  string            `json:"version"`
	Eligible int               `json:"eligible_backends"`
	Members  []ring.MemberInfo `json:"members"`
	Sessions map[string]int    `json:"sessions_per_backend"`
}

// handleCluster reports the gateway's view of the fleet: member health plus
// a live per-backend session census (polled, best effort — an unreachable
// backend reports -1).
func (g *Gateway) handleCluster(w http.ResponseWriter, r *http.Request) {
	members := g.ring.Members()
	info := clusterInfo{
		Version:  version.String(),
		Eligible: g.ring.EligibleCount(),
		Members:  members,
		Sessions: make(map[string]int, len(members)),
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	for _, m := range members {
		wg.Add(1)
		go func(m ring.MemberInfo) {
			defer wg.Done()
			n := g.countSessions(r.Context(), m.Addr)
			mu.Lock()
			info.Sessions[m.Name] = n
			mu.Unlock()
		}(m)
	}
	wg.Wait()
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(info)
}

// countSessions polls one backend's live session count; -1 when unreachable.
func (g *Gateway) countSessions(ctx context.Context, addr string) int {
	ctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+"/admin/sessions", nil)
	if err != nil {
		return -1
	}
	resp, err := g.client.Do(req)
	if err != nil {
		return -1
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return -1
	}
	var list serve.SessionList
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		return -1
	}
	return len(list.Sessions)
}

// handleHealthz: the gateway is ready while at least one backend can own
// sessions. The body mirrors the daemons' phase vocabulary so the same
// polling loops work against either tier.
func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if g.ring.EligibleCount() == 0 {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "degraded")
		return
	}
	fmt.Fprintln(w, "ready")
}
