// Border surveillance: a custom deployment (not the paper's square field)
// showing the library outside the benchmark configuration — a long, thin
// strip of sensors guarding a border, an intruder crossing it obliquely, and
// node failures injected mid-mission.
//
//	go run ./examples/bordersurveillance
package main

import (
	"fmt"
	"log"
	"math"

	"repro/cdpf"
)

func main() {
	// A 500x60 m border strip, moderately dense.
	rng := cdpf.NewRNG(2026)
	nw, err := cdpf.NewNetwork(cdpf.NetworkConfig{
		Width: 500, Height: 60,
		Density:    15, // nodes per 100 m²
		CommRadius: 30, SensingRadius: 10,
	}, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("border strip: %d nodes over 500x60 m\n", nw.Len())

	// The intruder enters at the west end and runs along the strip with
	// random small turns, bouncing off the strip edges (an intruder that
	// stays inside the patrolled corridor).
	const (
		dt    = 5.0
		steps = 20 // filter iterations: 100 s pursuit
		speed = 4.0
	)
	motion := rng.Split(1)
	pos := cdpf.V2(0, 30)
	heading := 0.0
	var track []cdpf.Vec2 // position at each filter tick
	track = append(track, pos)
	for s := 1; s <= steps*int(dt); s++ {
		heading += motion.Uniform(-math.Pi/18, math.Pi/18) // ±10° per second
		next := pos.Add(cdpf.V2(speed*math.Cos(heading), speed*math.Sin(heading)))
		if next.Y < 10 || next.Y > 50 { // reflect off the corridor edges
			heading = -heading
			next = pos.Add(cdpf.V2(speed*math.Cos(heading), speed*math.Sin(heading)))
		}
		pos = next
		if s%int(dt) == 0 {
			track = append(track, pos)
		}
	}

	cfg := cdpf.DefaultTrackerConfig(false)
	cfg.Dt = dt
	tracker, err := cdpf.NewTracker(nw, cfg)
	if err != nil {
		log.Fatal(err)
	}

	sensor := cdpf.BearingSensor{SigmaN: 0.05}
	noise := rng.Split(2)
	trackerRNG := rng.Split(3)
	faults := rng.Split(4)

	var errs []float64
	for k := 0; k < len(track); k++ {
		// Halfway through the mission a storm knocks out 15% of the nodes.
		if k == len(track)/2 {
			failed := 0
			for _, nd := range nw.Nodes {
				if faults.Float64() < 0.15 {
					nd.State = cdpf.Failed
					failed++
				}
			}
			fmt.Printf("t=%3.0fs  !! %d nodes failed\n", float64(k)*dt, failed)
		}

		pos := track[k]
		var obs []cdpf.Observation
		for _, id := range nw.ActiveNodesWithin(pos, nw.Cfg.SensingRadius) {
			obs = append(obs, cdpf.Observation{
				Node:    id,
				Bearing: sensor.Measure(nw.Node(id).Pos, pos, noise),
			})
		}
		res := tracker.Step(obs, trackerRNG)
		if res.EstimateValid && k >= 1 {
			e := res.Estimate.Dist(track[k-1])
			errs = append(errs, e)
			fmt.Printf("t=%3.0fs  intruder at (%6.1f, %4.1f), estimate (%6.1f, %4.1f), error %5.2f m, %d holders\n",
				float64(k)*dt, pos.X, pos.Y,
				res.Estimate.X, res.Estimate.Y, e, res.Holders)
		}
	}

	sum := 0.0
	for _, e := range errs {
		sum += e * e
	}
	fmt.Printf("\npursuit RMSE %.2f m over %d estimates (including the failure event)\n",
		math.Sqrt(sum/float64(len(errs))), len(errs))
	fmt.Printf("communication: %v\n", nw.Stats)
}
