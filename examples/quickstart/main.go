// Quickstart: deploy the paper's sensor field, let a target cross it, and
// track it with the completely distributed particle filter (CDPF).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/cdpf"
)

func main() {
	// The paper's simulation environment: a 200x200 m field at 20 nodes
	// per 100 m² (8,000 nodes), sensing radius 10 m, communication radius
	// 30 m; the target enters at (0, 100) at 3 m/s with random ±15° turns,
	// filtered every 5 s for 10 iterations.
	sc, err := cdpf.DefaultScenario(20, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deployed %d nodes over %.0fx%.0f m\n",
		sc.Net.Len(), sc.Net.Cfg.Width, sc.Net.Cfg.Height)

	// CDPF: particles live on sensor nodes and are propagated along the
	// target trajectory; the overhearing effect during propagation replaces
	// all weight-aggregation traffic.
	tracker, err := cdpf.NewTracker(sc.Net, cdpf.DefaultTrackerConfig(false))
	if err != nil {
		log.Fatal(err)
	}

	rng := sc.RNG(1)
	for k := 0; k < sc.Iterations(); k++ {
		// Nodes whose sensing disc contains the target measure a bearing.
		obs := sc.Observations(k)
		res := tracker.Step(obs, rng)

		// The reordered pipeline estimates the *previous* iteration: the
		// total weight needed for normalization is only overheard during
		// the next propagation.
		if res.EstimateValid && k >= 1 {
			truth := sc.Truth(k - 1)
			fmt.Printf("t=%3.0fs  %2d detectors, %2d particle holders; "+
				"estimate for t=%.0fs: (%6.2f, %6.2f), error %.2f m\n",
				sc.Filter.Times[k], len(obs), res.Holders,
				sc.Filter.Times[k-1], res.Estimate.X, res.Estimate.Y,
				res.Estimate.Dist(truth))
		} else {
			fmt.Printf("t=%3.0fs  %2d detectors, %2d particle holders (initializing)\n",
				sc.Filter.Times[k], len(obs), res.Holders)
		}
	}

	// Every byte above went through the simulated radio.
	fmt.Printf("\ntotal communication: %v\n", sc.Net.Stats)
	fmt.Printf("(%d messages, %d bytes for the whole run)\n",
		sc.Net.Stats.TotalMsgs(), sc.Net.Stats.TotalBytes())
}
