// Comparison: run all four algorithms of the paper's evaluation — CPF,
// SDPF, CDPF, and CDPF-NE — on identical scenarios and print the
// accuracy-versus-communication tradeoff that motivates the paper.
//
//	go run ./examples/comparison
package main

import (
	"fmt"
	"log"
	"math"

	"repro/cdpf"
)

const (
	density = 20
	seeds   = 5
)

func main() {
	fmt.Printf("density %d nodes/100m², %d seeds, 10 filter iterations each\n\n", density, seeds)
	type row struct {
		name  string
		rmse  float64
		bytes float64
	}
	rows := []row{
		{"CPF (centralized)", 0, 0},
		{"SDPF (semi-distributed)", 0, 0},
		{"CDPF (this paper)", 0, 0},
		{"CDPF-NE (min. communication)", 0, 0},
	}

	for s := 0; s < seeds; s++ {
		seed := uint64(s+1) * 31
		for i := range rows {
			rmse, bytes := runOne(i, seed)
			rows[i].rmse += rmse / seeds
			rows[i].bytes += bytes / seeds
		}
	}

	fmt.Printf("%-30s %10s %14s\n", "algorithm", "RMSE (m)", "bytes per run")
	for _, r := range rows {
		fmt.Printf("%-30s %10.2f %14.0f\n", r.name, r.rmse, r.bytes)
	}
	fmt.Printf("\nCDPF transmits %.0f%% less than SDPF and %.0f%% less than CPF.\n",
		100*(1-rows[2].bytes/rows[1].bytes), 100*(1-rows[2].bytes/rows[0].bytes))
}

// runOne executes algorithm index i on a fresh scenario and returns its
// RMSE and total bytes.
func runOne(i int, seed uint64) (float64, float64) {
	sc, err := cdpf.DefaultScenario(density, seed)
	if err != nil {
		log.Fatal(err)
	}
	var errs []float64
	switch i {
	case 0: // CPF
		c, err := cdpf.NewCPF(sc.Net, cdpf.DefaultCPFConfig())
		if err != nil {
			log.Fatal(err)
		}
		rng := sc.RNG(2)
		for k := 0; k < sc.Iterations(); k++ {
			if est, ok := c.Step(sc.Observations(k), rng); ok {
				errs = append(errs, est.Dist(sc.Truth(k)))
			}
		}
	case 1: // SDPF
		s, err := cdpf.NewSDPF(sc.Net, cdpf.DefaultSDPFConfig())
		if err != nil {
			log.Fatal(err)
		}
		rng := sc.RNG(3)
		for k := 0; k < sc.Iterations(); k++ {
			if est, ok := s.Step(sc.Observations(k), rng); ok {
				errs = append(errs, est.Dist(sc.Truth(k)))
			}
		}
	default: // CDPF / CDPF-NE
		tr, err := cdpf.NewTracker(sc.Net, cdpf.DefaultTrackerConfig(i == 3))
		if err != nil {
			log.Fatal(err)
		}
		rng := sc.RNG(1)
		for k := 0; k < sc.Iterations(); k++ {
			res := tr.Step(sc.Observations(k), rng)
			if res.EstimateValid && k >= 1 {
				errs = append(errs, res.Estimate.Dist(sc.Truth(k-1)))
			}
		}
	}
	sum := 0.0
	for _, e := range errs {
		sum += e * e
	}
	rmse := math.Sqrt(sum / float64(len(errs)))
	return rmse, float64(sc.Net.Stats.TotalBytes())
}
