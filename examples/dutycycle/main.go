// Duty cycling: track a target through a mostly-sleeping sensor field.
//
// Duty-cycled WSNs are the paper's motivating deployment: nodes sleep most
// of the time and waking up to transmit dominates energy, which is why
// minimizing the *number of messages* (not just bytes) matters. This example
// runs CDPF over a network on a 20% duty cycle with TDSS-style proactive
// wake-up of the predicted area (Section III-C) and compares the energy bill
// with an always-on deployment.
//
//	go run ./examples/dutycycle
package main

import (
	"fmt"
	"log"
	"math"

	"repro/cdpf"
)

func main() {
	always := run(false)
	duty := run(true)

	fmt.Printf("%-22s %10s %10s %12s %12s\n", "mode", "RMSE (m)", "estimates", "energy (J)", "awake share")
	for _, r := range []result{always, duty} {
		fmt.Printf("%-22s %10.2f %10d %12.2f %11.0f%%\n",
			r.mode, r.rmse, r.estimates, r.energyJ, 100*r.awakeShare)
	}
	fmt.Printf("\nduty cycling + proactive wake-up keeps the track while cutting idle energy %.1fx\n",
		always.energyJ/duty.energyJ)
}

type result struct {
	mode       string
	rmse       float64
	estimates  int
	energyJ    float64
	awakeShare float64
}

func run(dutyCycled bool) result {
	p := cdpf.DefaultScenarioParams(20, 42)
	sc, err := cdpf.NewScenario(p)
	if err != nil {
		log.Fatal(err)
	}
	sc.Net.Energy = cdpf.DefaultEnergyModel()

	// 20% duty cycle with a 10 s period and random per-node phase.
	var dc *cdpf.DutyCycle
	if dutyCycled {
		dc, err = cdpf.NewDutyCycle(sc.Net.Len(), 10, 0.2, sc.RNG(50))
		if err != nil {
			log.Fatal(err)
		}
	}
	sched := cdpf.NewScheduler(sc.Net, dc)

	tracker, err := cdpf.NewTracker(sc.Net, cdpf.DefaultTrackerConfig(false))
	if err != nil {
		log.Fatal(err)
	}

	rng := sc.RNG(1)
	var errs []float64
	awakeSum := 0.0
	var last cdpf.StepResult
	for k := 0; k < sc.Iterations(); k++ {
		now := sc.Filter.Times[k]
		sched.Apply(now)
		// Proactive wake-up: a particle-holding node beacons the predicted
		// area so sleeping nodes there are awake when the target arrives.
		if dutyCycled && last.PredictedValid {
			beacon := cdpf.NodeID(-1)
			if hs := tracker.Holders(); len(hs) > 0 {
				beacon = hs[0]
			}
			wakeRadius := sc.Net.Cfg.SensingRadius + 1.5*p.Target.Speed*p.Dt
			sched.ProactiveWake(beacon, last.Predicted, wakeRadius, now+p.Dt)
		}
		awakeSum += float64(sched.AwakeCount()) / float64(sc.Net.Len())

		last = tracker.Step(sc.Observations(k), rng)
		if last.EstimateValid && k >= 1 {
			errs = append(errs, last.Estimate.Dist(sc.Truth(k-1)))
		}

		// Charge idle/sleep energy for the elapsed filter period.
		for _, nd := range sc.Net.Nodes {
			switch {
			case nd.Active():
				nd.EnergyUsed += sc.Net.Energy.IdleCost(p.Dt)
			default:
				nd.EnergyUsed += sc.Net.Energy.SleepCost(p.Dt)
			}
		}
	}

	sum := 0.0
	for _, e := range errs {
		sum += e * e
	}
	mode := "always-on"
	if dutyCycled {
		mode = "20% duty cycle + TDSS"
	}
	return result{
		mode:       mode,
		rmse:       math.Sqrt(sum / float64(len(errs))),
		estimates:  len(errs),
		energyJ:    sc.Net.TotalEnergy() / 1e6,
		awakeShare: awakeSum / float64(sc.Iterations()),
	}
}
