// Multi-target tracking: two intruders cross the field simultaneously; a
// fleet of per-track CDPF instances with geometric data association keeps
// one track per target, initiates tracks from fresh detection clusters, and
// retires tracks when a target leaves.
//
//	go run ./examples/multitarget
package main

import (
	"fmt"
	"log"
	"math"

	"repro/cdpf"
)

func main() {
	rng := cdpf.NewRNG(7)
	nw, err := cdpf.NewNetwork(cdpf.DefaultNetworkConfig(20), rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("field: %d nodes; two targets inbound\n\n", nw.Len())

	mgr, err := cdpf.NewMultiManager(nw, cdpf.DefaultMultiConfig(false))
	if err != nil {
		log.Fatal(err)
	}

	sensor := cdpf.BearingSensor{SigmaN: 0.05}
	noise := rng.Split(1)
	stepRNG := rng.Split(2)

	// Target A crosses west→east; target B enters later from the south and
	// leaves early.
	const dt = 5.0
	posA := cdpf.V2(10, 60)
	velA := cdpf.V2(3, 0.4)
	posB := cdpf.V2(100, 10)
	velB := cdpf.V2(0.5, 3)
	var prevTargets []cdpf.Vec2

	for k := 0; k < 12; k++ {
		var targets []cdpf.Vec2
		targets = append(targets, posA)
		active := "A"
		if k >= 3 && k <= 9 { // B present only in the middle of the run
			targets = append(targets, posB)
			active = "A+B"
		}

		obs := observe(nw, sensor, targets, noise)
		tracks := mgr.Step(obs, stepRNG)

		fmt.Printf("t=%3.0fs  targets=%-3s  live tracks=%d", float64(k)*dt, active, len(tracks))
		for _, tr := range tracks {
			if tr.EstimateValid && len(prevTargets) > 0 {
				// Estimates lag one iteration (CDPF's correction step), so
				// compare against the previous tick's target positions.
				best := math.Inf(1)
				for _, tg := range prevTargets {
					if d := tr.Estimate.Dist(tg); d < best {
						best = d
					}
				}
				fmt.Printf("  [track %d: est (%5.1f, %5.1f), %4.1f m off]",
					tr.ID, tr.Estimate.X, tr.Estimate.Y, best)
			}
		}
		fmt.Println()
		prevTargets = append(prevTargets[:0], targets...)

		posA = posA.Add(velA.Scale(dt))
		if k >= 3 {
			posB = posB.Add(velB.Scale(dt))
		}
	}

	fmt.Printf("\ncommunication for the whole fleet: %v\n", nw.Stats)
}

// observe returns bearings from every node within sensing range of any
// target, each node measuring its nearest one.
func observe(nw *cdpf.Network, sensor cdpf.BearingSensor, targets []cdpf.Vec2, rng *cdpf.RNG) []cdpf.Observation {
	nearest := map[cdpf.NodeID]cdpf.Vec2{}
	for _, tg := range targets {
		for _, id := range nw.ActiveNodesWithin(tg, nw.Cfg.SensingRadius) {
			if prev, ok := nearest[id]; !ok || nw.Node(id).Pos.Dist(tg) < nw.Node(id).Pos.Dist(prev) {
				nearest[id] = tg
			}
		}
	}
	var obs []cdpf.Observation
	for id, tg := range nearest {
		obs = append(obs, cdpf.Observation{
			Node:    id,
			Bearing: sensor.Measure(nw.Node(id).Pos, tg, rng),
		})
	}
	return obs
}
