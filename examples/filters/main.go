// Filters: the generic particle-filtering library on its own, outside the
// sensor-network setting. A maneuvering target is tracked from noisy
// position fixes by four estimators — the exact Kalman filter, a plain SIR
// particle filter, a regularized SIR (post-resampling kernel jitter), and an
// auxiliary particle filter — and their errors are compared.
//
//	go run ./examples/filters
package main

import (
	"fmt"
	"log"
	"math"

	"repro/cdpf"
)

const (
	steps  = 80
	sigmaZ = 0.6 // position-fix noise (m)
	nPart  = 300
)

func main() {
	model, err := cdpf.NewCVModel(1, 0.3, 0.3)
	if err != nil {
		log.Fatal(err)
	}

	// Ground truth: a coordinated-turn target the CV filters must chase.
	truthModel, err := cdpf.NewCTModel(1, 0.06, 0.05)
	if err != nil {
		log.Fatal(err)
	}
	sysRNG := cdpf.NewRNG(2026)
	truth := cdpf.State{Pos: cdpf.V2(0, 0), Vel: cdpf.V2(2, 0)}

	// The exact linear-Gaussian reference.
	kf := newKalman(model)

	// Three particle filters sharing one initializer.
	init := func(r *cdpf.RNG) cdpf.State {
		return cdpf.State{
			Pos: cdpf.V2(r.Normal(0, 1), r.Normal(0, 1)),
			Vel: cdpf.V2(r.Normal(2, 0.5), r.Normal(0, 0.5)),
		}
	}
	sir, _ := cdpf.NewSIR(cdpf.SIRConfig{N: nPart})
	rpf, _ := cdpf.NewSIR(cdpf.SIRConfig{N: nPart, Regularize: &cdpf.Regularizer{}})
	apf, _ := cdpf.NewAPF(cdpf.APFConfig{N: nPart})
	rngS, rngR, rngA := cdpf.NewRNG(1), cdpf.NewRNG(2), cdpf.NewRNG(3)
	sir.Init(init, rngS)
	rpf.Init(init, rngR)
	apf.Init(init, rngA)

	propose := func(s cdpf.State, r *cdpf.RNG) cdpf.State { return model.Step(s, r) }
	predict := func(s cdpf.State) cdpf.State { return model.StepDeterministic(s) }

	errKF := make([]float64, 0, steps)
	errSIR := make([]float64, 0, steps)
	errRPF := make([]float64, 0, steps)
	errAPF := make([]float64, 0, steps)

	for k := 0; k < steps; k++ {
		truth = truthModel.Step(truth, sysRNG)
		z := cdpf.V2(
			truth.Pos.X+sysRNG.Normal(0, sigmaZ),
			truth.Pos.Y+sysRNG.Normal(0, sigmaZ),
		)
		loglik := func(c cdpf.State) float64 {
			dx := (z.X - c.Pos.X) / sigmaZ
			dy := (z.Y - c.Pos.Y) / sigmaZ
			return -0.5 * (dx*dx + dy*dy)
		}

		kf.Predict()
		if err := kf.Update([]float64{z.X, z.Y}); err != nil {
			log.Fatal(err)
		}
		errKF = append(errKF, kf.PosEstimate().Dist(truth.Pos))
		errSIR = append(errSIR, sir.Step(propose, loglik, rngS).Pos.Dist(truth.Pos))
		errRPF = append(errRPF, rpf.Step(propose, loglik, rngR).Pos.Dist(truth.Pos))
		errAPF = append(errAPF, apf.Step(predict, propose, loglik, rngA).Pos.Dist(truth.Pos))
	}

	fmt.Printf("tracking a coordinated-turn target for %d steps (σz = %.1f m, N = %d particles)\n\n",
		steps, sigmaZ, nPart)
	fmt.Printf("%-28s %10s\n", "estimator", "RMSE (m)")
	fmt.Printf("%-28s %10.3f\n", "Kalman filter (CV model)", rms(errKF))
	fmt.Printf("%-28s %10.3f\n", "SIR particle filter", rms(errSIR))
	fmt.Printf("%-28s %10.3f\n", "regularized SIR", rms(errRPF))
	fmt.Printf("%-28s %10.3f\n", "auxiliary particle filter", rms(errAPF))
}

// newKalman builds the exact reference filter for direct (x, y) position
// measurements with noise sigmaZ.
func newKalman(m *cdpf.CVModel) *cdpf.Kalman {
	h := cdpf.MatFromRows(
		[]float64{1, 0, 0, 0},
		[]float64{0, 1, 0, 0},
	)
	r := cdpf.Diag(sigmaZ*sigmaZ, sigmaZ*sigmaZ)
	kf, err := cdpf.NewKalman(m.Phi, m.ProcessCov(), h, r,
		[]float64{0, 0, 2, 0}, cdpf.Diag(1, 1, 1, 1))
	if err != nil {
		log.Fatal(err)
	}
	return kf
}

func rms(xs []float64) float64 {
	s := 0.0
	for _, x := range xs[10:] { // skip the acquisition transient
		s += x * x
	}
	return math.Sqrt(s / float64(len(xs)-10))
}
