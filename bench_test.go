// Package repro's benchmark harness: one benchmark per table/figure of the
// paper's evaluation, plus performance benchmarks of the simulator itself.
//
// The figure benchmarks report the *domain* quantities (bytes per run, RMSE
// in meters) via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// regenerates the paper's headline numbers alongside the usual ns/op:
//
//	BenchmarkFig5CommCost/cdpf/d20    ...  3476 bytes_per_run
//	BenchmarkFig6RMSE/cdpf/d20        ...  4.1 rmse_m
package repro

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"

	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/fleet"
	"repro/internal/kernel"
	"repro/internal/mathx"
	"repro/internal/metrics"
	"repro/internal/scenario"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/wsn"
)

// benchSeed keeps the figure benchmarks deterministic.
const benchSeed = 31

// BenchmarkTable1CostModel regenerates Table I: it measures N, N_s, and
// H_max from a CDPF run at density 20 and evaluates the closed forms.
func BenchmarkTable1CostModel(b *testing.B) {
	b.ReportAllocs()
	var lastCDPF int
	for i := 0; i < b.N; i++ {
		_, meas, err := experiments.Table1(20, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		lastCDPF = meas.Params.CDPF()
	}
	b.ReportMetric(float64(lastCDPF), "cdpf_bytes_per_iter")
}

// BenchmarkFig4Trajectory regenerates the Fig. 4 estimation example and
// reports the example-track mean error.
func BenchmarkFig4Trajectory(b *testing.B) {
	b.ReportAllocs()
	var meanErr float64
	for i := 0; i < b.N; i++ {
		points, err := experiments.Fig4(20, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		var sum float64
		var n int
		for _, p := range points {
			if p.HaveC {
				sum += p.CDPF.Dist(p.Truth)
				n++
			}
		}
		meanErr = sum / float64(n)
	}
	b.ReportMetric(meanErr, "cdpf_mean_err_m")
}

// BenchmarkFig5CommCost regenerates the Fig. 5 series: total communication
// bytes per run, per algorithm, per density.
func BenchmarkFig5CommCost(b *testing.B) {
	b.ReportAllocs()
	for _, algo := range experiments.AllAlgos() {
		for _, d := range []float64{5, 20, 40} {
			b.Run(fmt.Sprintf("%s/d%g", algo, d), func(b *testing.B) {
				b.ReportAllocs()
				var bytes int64
				for i := 0; i < b.N; i++ {
					r, err := experiments.RunOnce(scenario.Default(d, benchSeed), algo)
					if err != nil {
						b.Fatal(err)
					}
					bytes = r.Bytes()
				}
				b.ReportMetric(float64(bytes), "bytes_per_run")
			})
		}
	}
}

// BenchmarkFig6RMSE regenerates the Fig. 6 series: RMSE per algorithm per
// density.
func BenchmarkFig6RMSE(b *testing.B) {
	b.ReportAllocs()
	for _, algo := range experiments.AllAlgos() {
		for _, d := range []float64{5, 20, 40} {
			b.Run(fmt.Sprintf("%s/d%g", algo, d), func(b *testing.B) {
				b.ReportAllocs()
				var rmse float64
				for i := 0; i < b.N; i++ {
					r, err := experiments.RunOnce(scenario.Default(d, benchSeed), algo)
					if err != nil {
						b.Fatal(err)
					}
					rmse = r.RMSE()
				}
				b.ReportMetric(rmse, "rmse_m")
			})
		}
	}
}

// BenchmarkFailureTolerance regenerates the future-work extension: CDPF
// under 30% random node failures.
func BenchmarkFailureTolerance(b *testing.B) {
	b.ReportAllocs()
	var rmse float64
	for i := 0; i < b.N; i++ {
		p := scenario.Default(20, benchSeed)
		p.FailFraction = 0.3
		r, err := experiments.RunOnce(p, experiments.AlgoCDPF)
		if err != nil {
			b.Fatal(err)
		}
		rmse = r.RMSE()
	}
	b.ReportMetric(rmse, "rmse_m")
}

// BenchmarkDesignAblation regenerates the design-choice ablation.
func BenchmarkDesignAblation(b *testing.B) {
	b.ReportAllocs()
	var rows int
	for i := 0; i < b.N; i++ {
		res, err := experiments.DesignAblation(20, experiments.Seeds(1))
		if err != nil {
			b.Fatal(err)
		}
		rows = len(res)
	}
	b.ReportMetric(float64(rows), "variants")
}

// BenchmarkScenarioBuild measures the simulator's setup cost (deployment +
// spatial index + trajectory) at the paper's largest density.
func BenchmarkScenarioBuild(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := scenario.Build(scenario.Default(40, benchSeed)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAlgoRun measures a full tracking run (scenario build + 10 filter
// iterations) for each algorithm at density 20, the simulator's end-to-end
// performance number.
func BenchmarkAlgoRun(b *testing.B) {
	b.ReportAllocs()
	for _, algo := range experiments.AllAlgos() {
		b.Run(string(algo), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := experiments.RunOnce(scenario.Default(20, benchSeed), algo); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFleetSweep measures the Fig. 5/6 sweep cells through the fleet
// execution runtime at increasing worker counts. workers=1 is the legacy
// serial path; on an N-core machine the higher worker counts should approach
// N× the serial jobs/sec, with bit-identical results (the cells are
// embarrassingly parallel and share no state).
func BenchmarkFleetSweep(b *testing.B) {
	b.ReportAllocs()
	densities := []float64{5, 10}
	seeds := experiments.Seeds(2)
	algos := experiments.AllAlgos()
	cells := len(densities) * len(seeds) * len(algos)
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			e := experiments.Exec{Workers: w}
			for i := 0; i < b.N; i++ {
				if _, err := e.Sweep(densities, seeds, algos); err != nil {
					b.Fatal(err)
				}
			}
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(float64(cells*b.N)/secs, "jobs/sec")
			}
		})
	}
}

// BenchmarkFleetMonteCarlo runs CDPF trials whose seeds are derived with
// fleet.Seeds — the Split-based per-job derivation the runtime's determinism
// contract rests on — through fleet.Map directly.
func BenchmarkFleetMonteCarlo(b *testing.B) {
	b.ReportAllocs()
	trials := fleet.Seeds(benchSeed, 8)
	for i := 0; i < b.N; i++ {
		results, err := fleet.Map(context.Background(), fleet.Config{}, trials,
			func(_ context.Context, seed uint64) (metrics.RunResult, error) {
				return experiments.RunOnce(scenario.Default(10, seed), experiments.AlgoCDPF)
			})
		if err != nil {
			b.Fatal(err)
		}
		if len(results) != len(trials) {
			b.Fatalf("got %d results", len(results))
		}
	}
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(len(trials)*b.N)/secs, "jobs/sec")
	}
}

// BenchmarkRNGThroughput covers the numerics substrate end to end: sampling
// the process noise path used by every propagation.
func BenchmarkRNGThroughput(b *testing.B) {
	b.ReportAllocs()
	rng := mathx.NewRNG(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += rng.Normal(0, 0.05)
	}
	_ = sink
}

// BenchmarkGossipAggregation prices the in-network alternative to CDPF's
// overhearing: randomized pairwise averaging over a 30-node holder cluster.
func BenchmarkGossipAggregation(b *testing.B) {
	b.ReportAllocs()
	nw, err := wsn.NewNetwork(wsn.DefaultConfig(20), mathx.NewRNG(1))
	if err != nil {
		b.Fatal(err)
	}
	rng := mathx.NewRNG(2)
	values := map[wsn.NodeID]float64{}
	for _, id := range nw.ActiveNodesWithin(mathx.V2(100, 100), 12) {
		values[id] = rng.Float64()
		if len(values) == 30 {
			break
		}
	}
	b.ResetTimer()
	var bytes int64
	for i := 0; i < b.N; i++ {
		nw.Stats.Reset()
		res, err := consensus.Average(nw, values, consensus.Config{}, rng)
		if err != nil {
			b.Fatal(err)
		}
		bytes = res.Bytes
	}
	b.ReportMetric(float64(bytes), "bytes_per_aggregation")
}

// BenchmarkMultiTargetFleet runs the two-target fleet end to end.
func BenchmarkMultiTargetFleet(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.MultiTargetExperiment(20, []int{2}, []uint64{benchSeed}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEventDrivenSession measures the DES-driven duty-cycled session.
func BenchmarkEventDrivenSession(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s, err := sim.NewSession(sim.Config{
			Scenario:  scenario.Default(20, benchSeed),
			Tracker:   core.DefaultConfig(false),
			DutyCycle: 0.2,
		})
		if err != nil {
			b.Fatal(err)
		}
		s.Run()
	}
}

// BenchmarkTrackerStep isolates one warmed CDPF iteration: scenario build and
// tracker warm-up run outside the timed loop, so ns/op and allocs/op price
// exactly the per-iteration hot path the scratch arena targets (steady-state
// allocs/op should be 0).
func BenchmarkTrackerStep(b *testing.B) {
	b.ReportAllocs()
	sc, err := scenario.Build(scenario.Default(20, benchSeed))
	if err != nil {
		b.Fatal(err)
	}
	tr, err := core.NewTracker(sc.Net, core.DefaultConfig(false))
	if err != nil {
		b.Fatal(err)
	}
	rng := sc.RNG(1)
	obs := make([][]core.Observation, sc.Iterations())
	for k := range obs {
		obs[k] = sc.Observations(k)
	}
	// Warm-up: one full pass grows every scratch buffer to its high-water mark.
	for k := range obs {
		tr.Step(obs[k], rng)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Step(obs[i%len(obs)], rng)
	}
}

// BenchmarkActiveNodesQuery prices one buffer-reusing spatial query at
// density 20 (steady-state allocs/op should be 0).
func BenchmarkActiveNodesQuery(b *testing.B) {
	b.ReportAllocs()
	nw, err := wsn.NewNetwork(wsn.DefaultConfig(20), mathx.NewRNG(1))
	if err != nil {
		b.Fatal(err)
	}
	buf := nw.AppendActiveNodesWithin(nil, mathx.V2(100, 100), 20) // warm the buffer
	var n int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = nw.AppendActiveNodesWithin(buf[:0], mathx.V2(100, 100), 20)
		n = len(buf)
	}
	b.ReportMetric(float64(n), "nodes_per_query")
}

// BenchmarkBatchNormal prices one batch of propagation noise draws through
// the buffer-filling Gaussian API (allocs/op should be 0).
func BenchmarkBatchNormal(b *testing.B) {
	b.ReportAllocs()
	rng := mathx.NewRNG(1)
	buf := make([]float64, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rng.NormalFill(buf, 0, 0.05)
	}
}

// kernelColumns builds deterministic coordinate/bearing/distance columns
// shaped like a density-20 sharer set, for pricing the batch kernels in
// isolation (DESIGN.md §16).
func kernelColumns(n int) (fromX, fromY, z, dist []float64, mask []bool) {
	rng := mathx.NewRNG(5)
	fromX = make([]float64, n)
	fromY = make([]float64, n)
	z = make([]float64, n)
	dist = make([]float64, n)
	mask = make([]bool, n)
	for i := range fromX {
		fromX[i] = rng.Uniform(0, 120)
		fromY[i] = rng.Uniform(0, 120)
		z[i] = rng.Uniform(-3, 3)
		dist[i] = rng.Uniform(0, 40)
		mask[i] = rng.Float64() < 0.7
	}
	return
}

// BenchmarkKernelMaskedSum prices the assignLikelihood inner loop: one
// holder's masked ordered log-likelihood sum over 64 sharer columns, in the
// constant-sigma fast lane (Gaussian, no quantization, no gating) and the
// general lane (Student-t with quantization and gating). allocs/op must be 0.
func BenchmarkKernelMaskedSum(b *testing.B) {
	fromX, fromY, z, dist, mask := kernelColumns(64)
	lanes := []struct {
		name string
		bk   kernel.Bearing
	}{
		{"gauss", kernel.NewBearing(0.05, 0, 0, 0)},
		{"student-t-quant-gate", kernel.NewBearing(0.05, 4, 2.0, 2.5)},
	}
	for _, lane := range lanes {
		b.Run(lane.name, func(b *testing.B) {
			b.ReportAllocs()
			var sink float64
			for i := 0; i < b.N; i++ {
				ll, _, _ := lane.bk.MaskedSum(fromX, fromY, z, dist, mask, 60, 60)
				sink += ll
			}
			_ = sink
		})
	}
}

// BenchmarkKernelOverheardSum prices the propagation-phase overheard-weight
// aggregation over 64 broadcast columns (allocs/op must be 0).
func BenchmarkKernelOverheardSum(b *testing.B) {
	b.ReportAllocs()
	bx, by, bw, _, _ := kernelColumns(64)
	ids := make([]int32, len(bx))
	for i := range ids {
		ids[i] = int32(i)
	}
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += kernel.OverheardSum(bx, by, bw, ids, -1, 60, 60, 40)
	}
	_ = sink
}

// BenchmarkKernelPropagateCV prices the constant-velocity column advance
// with and without pre-drawn process noise (allocs/op must be 0).
func BenchmarkKernelPropagateCV(b *testing.B) {
	px, py, vx, vy, _ := kernelColumns(1024)
	nx, ny, _, _, _ := kernelColumns(1024)
	b.Run("drift", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			kernel.PropagateCV(px, py, vx, vy, 5)
		}
	})
	b.Run("noise", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			kernel.PropagateCVNoise(px, py, vx, vy, nx, ny, 5)
		}
	})
}

// BenchmarkServeManagerThroughput drives the serving core in process — no
// HTTP, no SSE transport — with the cross-session batch drain engaged: 8
// sessions fed round-robin through 2 shards, exactly the shape cdpfload's
// CI smoke applies over the wire. jobs/sec here is the transport-free upper
// bound the served number is judged against.
func BenchmarkServeManagerThroughput(b *testing.B) {
	const sessions = 8
	seeds := fleet.Seeds(benchSeed, sessions)
	specs := make([]serve.SessionSpec, sessions)
	batches := make([][]serve.Batch, sessions)
	for i := range specs {
		specs[i] = serve.SessionSpec{ID: fmt.Sprintf("bench-%d", i), Scenario: scenario.Default(10, seeds[i])}
		bs, err := serve.Observations(specs[i])
		if err != nil {
			b.Fatal(err)
		}
		batches[i] = bs
	}
	steps := sessions * len(batches[0])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := serve.NewManager(serve.ManagerConfig{Shards: 2})
		chans := make([]<-chan trace.Record, sessions)
		for j := range specs {
			if _, err := m.Create(specs[j]); err != nil {
				b.Fatal(err)
			}
			_, ch, err := m.Subscribe(specs[j].ID)
			if err != nil {
				b.Fatal(err)
			}
			chans[j] = ch
		}
		for k := 0; k < len(batches[0]); k++ {
			for j := range specs {
				for {
					_, err := m.Ingest(specs[j].ID, serve.IngestRequest{Batches: []serve.Batch{batches[j][k]}})
					if err == nil {
						break
					}
					var ae *serve.AdmitError
					if !errors.As(err, &ae) || (ae.Status != 429 && ae.Status != 503) {
						b.Fatalf("ingest session %d k=%d: %v", j, k, err)
					}
					runtime.Gosched()
				}
			}
		}
		for _, ch := range chans {
			for range ch {
			}
		}
		m.Drain()
	}
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(steps*b.N)/secs, "jobs/sec")
	}
}
