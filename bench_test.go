// Package repro's benchmark harness: one benchmark per table/figure of the
// paper's evaluation, plus performance benchmarks of the simulator itself.
//
// The figure benchmarks report the *domain* quantities (bytes per run, RMSE
// in meters) via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// regenerates the paper's headline numbers alongside the usual ns/op:
//
//	BenchmarkFig5CommCost/cdpf/d20    ...  3476 bytes_per_run
//	BenchmarkFig6RMSE/cdpf/d20        ...  4.1 rmse_m
package repro

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/fleet"
	"repro/internal/mathx"
	"repro/internal/metrics"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/wsn"
)

// benchSeed keeps the figure benchmarks deterministic.
const benchSeed = 31

// BenchmarkTable1CostModel regenerates Table I: it measures N, N_s, and
// H_max from a CDPF run at density 20 and evaluates the closed forms.
func BenchmarkTable1CostModel(b *testing.B) {
	b.ReportAllocs()
	var lastCDPF int
	for i := 0; i < b.N; i++ {
		_, meas, err := experiments.Table1(20, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		lastCDPF = meas.Params.CDPF()
	}
	b.ReportMetric(float64(lastCDPF), "cdpf_bytes_per_iter")
}

// BenchmarkFig4Trajectory regenerates the Fig. 4 estimation example and
// reports the example-track mean error.
func BenchmarkFig4Trajectory(b *testing.B) {
	b.ReportAllocs()
	var meanErr float64
	for i := 0; i < b.N; i++ {
		points, err := experiments.Fig4(20, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		var sum float64
		var n int
		for _, p := range points {
			if p.HaveC {
				sum += p.CDPF.Dist(p.Truth)
				n++
			}
		}
		meanErr = sum / float64(n)
	}
	b.ReportMetric(meanErr, "cdpf_mean_err_m")
}

// BenchmarkFig5CommCost regenerates the Fig. 5 series: total communication
// bytes per run, per algorithm, per density.
func BenchmarkFig5CommCost(b *testing.B) {
	b.ReportAllocs()
	for _, algo := range experiments.AllAlgos() {
		for _, d := range []float64{5, 20, 40} {
			b.Run(fmt.Sprintf("%s/d%g", algo, d), func(b *testing.B) {
				b.ReportAllocs()
				var bytes int64
				for i := 0; i < b.N; i++ {
					r, err := experiments.RunOnce(scenario.Default(d, benchSeed), algo)
					if err != nil {
						b.Fatal(err)
					}
					bytes = r.Bytes()
				}
				b.ReportMetric(float64(bytes), "bytes_per_run")
			})
		}
	}
}

// BenchmarkFig6RMSE regenerates the Fig. 6 series: RMSE per algorithm per
// density.
func BenchmarkFig6RMSE(b *testing.B) {
	b.ReportAllocs()
	for _, algo := range experiments.AllAlgos() {
		for _, d := range []float64{5, 20, 40} {
			b.Run(fmt.Sprintf("%s/d%g", algo, d), func(b *testing.B) {
				b.ReportAllocs()
				var rmse float64
				for i := 0; i < b.N; i++ {
					r, err := experiments.RunOnce(scenario.Default(d, benchSeed), algo)
					if err != nil {
						b.Fatal(err)
					}
					rmse = r.RMSE()
				}
				b.ReportMetric(rmse, "rmse_m")
			})
		}
	}
}

// BenchmarkFailureTolerance regenerates the future-work extension: CDPF
// under 30% random node failures.
func BenchmarkFailureTolerance(b *testing.B) {
	b.ReportAllocs()
	var rmse float64
	for i := 0; i < b.N; i++ {
		p := scenario.Default(20, benchSeed)
		p.FailFraction = 0.3
		r, err := experiments.RunOnce(p, experiments.AlgoCDPF)
		if err != nil {
			b.Fatal(err)
		}
		rmse = r.RMSE()
	}
	b.ReportMetric(rmse, "rmse_m")
}

// BenchmarkDesignAblation regenerates the design-choice ablation.
func BenchmarkDesignAblation(b *testing.B) {
	b.ReportAllocs()
	var rows int
	for i := 0; i < b.N; i++ {
		res, err := experiments.DesignAblation(20, experiments.Seeds(1))
		if err != nil {
			b.Fatal(err)
		}
		rows = len(res)
	}
	b.ReportMetric(float64(rows), "variants")
}

// BenchmarkScenarioBuild measures the simulator's setup cost (deployment +
// spatial index + trajectory) at the paper's largest density.
func BenchmarkScenarioBuild(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := scenario.Build(scenario.Default(40, benchSeed)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAlgoRun measures a full tracking run (scenario build + 10 filter
// iterations) for each algorithm at density 20, the simulator's end-to-end
// performance number.
func BenchmarkAlgoRun(b *testing.B) {
	b.ReportAllocs()
	for _, algo := range experiments.AllAlgos() {
		b.Run(string(algo), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := experiments.RunOnce(scenario.Default(20, benchSeed), algo); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFleetSweep measures the Fig. 5/6 sweep cells through the fleet
// execution runtime at increasing worker counts. workers=1 is the legacy
// serial path; on an N-core machine the higher worker counts should approach
// N× the serial jobs/sec, with bit-identical results (the cells are
// embarrassingly parallel and share no state).
func BenchmarkFleetSweep(b *testing.B) {
	b.ReportAllocs()
	densities := []float64{5, 10}
	seeds := experiments.Seeds(2)
	algos := experiments.AllAlgos()
	cells := len(densities) * len(seeds) * len(algos)
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			e := experiments.Exec{Workers: w}
			for i := 0; i < b.N; i++ {
				if _, err := e.Sweep(densities, seeds, algos); err != nil {
					b.Fatal(err)
				}
			}
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(float64(cells*b.N)/secs, "jobs/sec")
			}
		})
	}
}

// BenchmarkFleetMonteCarlo runs CDPF trials whose seeds are derived with
// fleet.Seeds — the Split-based per-job derivation the runtime's determinism
// contract rests on — through fleet.Map directly.
func BenchmarkFleetMonteCarlo(b *testing.B) {
	b.ReportAllocs()
	trials := fleet.Seeds(benchSeed, 8)
	for i := 0; i < b.N; i++ {
		results, err := fleet.Map(context.Background(), fleet.Config{}, trials,
			func(_ context.Context, seed uint64) (metrics.RunResult, error) {
				return experiments.RunOnce(scenario.Default(10, seed), experiments.AlgoCDPF)
			})
		if err != nil {
			b.Fatal(err)
		}
		if len(results) != len(trials) {
			b.Fatalf("got %d results", len(results))
		}
	}
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(len(trials)*b.N)/secs, "jobs/sec")
	}
}

// BenchmarkRNGThroughput covers the numerics substrate end to end: sampling
// the process noise path used by every propagation.
func BenchmarkRNGThroughput(b *testing.B) {
	b.ReportAllocs()
	rng := mathx.NewRNG(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += rng.Normal(0, 0.05)
	}
	_ = sink
}

// BenchmarkGossipAggregation prices the in-network alternative to CDPF's
// overhearing: randomized pairwise averaging over a 30-node holder cluster.
func BenchmarkGossipAggregation(b *testing.B) {
	b.ReportAllocs()
	nw, err := wsn.NewNetwork(wsn.DefaultConfig(20), mathx.NewRNG(1))
	if err != nil {
		b.Fatal(err)
	}
	rng := mathx.NewRNG(2)
	values := map[wsn.NodeID]float64{}
	for _, id := range nw.ActiveNodesWithin(mathx.V2(100, 100), 12) {
		values[id] = rng.Float64()
		if len(values) == 30 {
			break
		}
	}
	b.ResetTimer()
	var bytes int64
	for i := 0; i < b.N; i++ {
		nw.Stats.Reset()
		res, err := consensus.Average(nw, values, consensus.Config{}, rng)
		if err != nil {
			b.Fatal(err)
		}
		bytes = res.Bytes
	}
	b.ReportMetric(float64(bytes), "bytes_per_aggregation")
}

// BenchmarkMultiTargetFleet runs the two-target fleet end to end.
func BenchmarkMultiTargetFleet(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.MultiTargetExperiment(20, []int{2}, []uint64{benchSeed}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEventDrivenSession measures the DES-driven duty-cycled session.
func BenchmarkEventDrivenSession(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s, err := sim.NewSession(sim.Config{
			Scenario:  scenario.Default(20, benchSeed),
			Tracker:   core.DefaultConfig(false),
			DutyCycle: 0.2,
		})
		if err != nil {
			b.Fatal(err)
		}
		s.Run()
	}
}

// BenchmarkTrackerStep isolates one warmed CDPF iteration: scenario build and
// tracker warm-up run outside the timed loop, so ns/op and allocs/op price
// exactly the per-iteration hot path the scratch arena targets (steady-state
// allocs/op should be 0).
func BenchmarkTrackerStep(b *testing.B) {
	b.ReportAllocs()
	sc, err := scenario.Build(scenario.Default(20, benchSeed))
	if err != nil {
		b.Fatal(err)
	}
	tr, err := core.NewTracker(sc.Net, core.DefaultConfig(false))
	if err != nil {
		b.Fatal(err)
	}
	rng := sc.RNG(1)
	obs := make([][]core.Observation, sc.Iterations())
	for k := range obs {
		obs[k] = sc.Observations(k)
	}
	// Warm-up: one full pass grows every scratch buffer to its high-water mark.
	for k := range obs {
		tr.Step(obs[k], rng)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Step(obs[i%len(obs)], rng)
	}
}

// BenchmarkActiveNodesQuery prices one buffer-reusing spatial query at
// density 20 (steady-state allocs/op should be 0).
func BenchmarkActiveNodesQuery(b *testing.B) {
	b.ReportAllocs()
	nw, err := wsn.NewNetwork(wsn.DefaultConfig(20), mathx.NewRNG(1))
	if err != nil {
		b.Fatal(err)
	}
	buf := nw.AppendActiveNodesWithin(nil, mathx.V2(100, 100), 20) // warm the buffer
	var n int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = nw.AppendActiveNodesWithin(buf[:0], mathx.V2(100, 100), 20)
		n = len(buf)
	}
	b.ReportMetric(float64(n), "nodes_per_query")
}

// BenchmarkBatchNormal prices one batch of propagation noise draws through
// the buffer-filling Gaussian API (allocs/op should be 0).
func BenchmarkBatchNormal(b *testing.B) {
	b.ReportAllocs()
	rng := mathx.NewRNG(1)
	buf := make([]float64, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rng.NormalFill(buf, 0, 0.05)
	}
}
