// Command cdpfd is the online tracking daemon: it hosts concurrent CDPF
// sessions over HTTP, ingesting measurement batches and streaming estimates
// back as Server-Sent Events (see internal/serve for the API and the
// determinism contract with the offline sim).
//
// A session is created with either the flag-style Scenario/Tracker spec or a
// declarative spec/v1 cell: POST /v1/sessions with a "cell" object holding
// the axes (algo, density, seed, loss, burst, failfrac, sensor faults,
// defend, ...). Cells are admitted only when serveable — cdpf/cdpf-ne,
// single target, no duty cycle or mobility — and resolve through the same
// internal/spec path cdpfsim and cdpfmatrix use, so a served cell, an
// offline -spec run, and a matrix cell produce identical bytes.
//
// Usage:
//
//	cdpfd [-addr HOST:PORT] [-shards N] [-shard-queue N] [-max-sessions N]
//	      [-addr-file FILE] [-drain-timeout D] [-drain-linger D] [-data-dir DIR]
//	      [-fsync always|interval|none] [-snapshot-every N] [-version]
//
// With -data-dir, sessions are durable: every admitted batch is written to a
// write-ahead log before it is stepped, session state is snapshotted
// periodically, and on startup the daemon replays what a crashed or killed
// predecessor left behind — recovered sessions resume bit-identically (see
// internal/durable). While recovery runs, the port is bound but /v1/ serves
// 503 and /healthz reports "recovering".
//
// The daemon drains gracefully on SIGINT/SIGTERM: admission stops (503),
// every queued iteration is stepped, estimate streams are closed, live
// sessions are snapshotted, and the process exits 0. -addr-file writes the
// bound address (useful with -addr :0 for tests and CI smoke jobs).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/durable"
	"repro/internal/serve"
	"repro/internal/version"
)

// config carries every run parameter (the flag surface, parsed).
type config struct {
	addr          string
	shards        int
	shardQueue    int
	maxSessions   int
	addrFile      string
	drainTimeout  time.Duration
	drainLinger   time.Duration
	dataDir       string
	fsync         string
	snapshotEvery int
}

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", "127.0.0.1:8723", "listen address (use :0 for an ephemeral port)")
	flag.IntVar(&cfg.shards, "shards", runtime.GOMAXPROCS(0), "session shard (worker goroutine) count")
	flag.IntVar(&cfg.shardQueue, "shard-queue", 256, "bounded work-queue depth per shard (503 when full)")
	flag.IntVar(&cfg.maxSessions, "max-sessions", 4096, "live session limit")
	flag.StringVar(&cfg.addrFile, "addr-file", "", "write the bound address to this file once listening")
	flag.DurationVar(&cfg.drainTimeout, "drain-timeout", 30*time.Second, "maximum time to wait for connection drain after the queues empty")
	flag.DurationVar(&cfg.drainLinger, "drain-linger", 0, "after draining, keep serving session exports until the session table empties or this long passes (lets a gateway evacuate on SIGTERM)")
	flag.StringVar(&cfg.dataDir, "data-dir", "", "durability directory (WAL + snapshots); empty disables durability")
	flag.StringVar(&cfg.fsync, "fsync", "interval", "WAL sync policy: always, interval, or none")
	flag.IntVar(&cfg.snapshotEvery, "snapshot-every", 32, "snapshot each session every N steps")
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println("cdpfd", version.String())
		return
	}
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "cdpfd:", err)
		os.Exit(1)
	}
}

func run(cfg config) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	met := serve.NewMetrics(nil)

	// Open the durability directory before anything serves: torn WAL tails
	// are truncated here, and the returned recovery is replayed below.
	var store *durable.Store
	var recovery *durable.Recovery
	if cfg.dataDir != "" {
		policy, err := durable.ParseFsyncPolicy(cfg.fsync)
		if err != nil {
			return err
		}
		store, recovery, err = durable.Open(durable.Options{Dir: cfg.dataDir, Fsync: policy})
		if err != nil {
			return fmt.Errorf("opening durability dir: %w", err)
		}
		defer store.Close()
		met.SetDurability(store.Counters())
	}

	mgr := serve.NewManager(serve.ManagerConfig{
		Shards: cfg.shards, ShardQueue: cfg.shardQueue, MaxSessions: cfg.maxSessions,
		Metrics: met, Store: store, SnapshotEvery: cfg.snapshotEvery,
	})
	met.SetQueueDepthFunc(mgr.QueueDepth)

	handler := serve.NewServer(mgr, met)
	// Bind before recovering, gate the API while sessions rebuild: a
	// restarting daemon is observable (healthz "recovering") instead of
	// connection-refused, and clients' retry loops simply wait it out.
	if store != nil {
		handler.SetRecovering(true)
	}
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	bound := ln.Addr().String()
	if cfg.addrFile != "" {
		tmp := cfg.addrFile + ".tmp"
		if err := os.WriteFile(tmp, []byte(bound+"\n"), 0o644); err != nil {
			return err
		}
		if err := os.Rename(tmp, cfg.addrFile); err != nil {
			return err
		}
	}
	log.Printf("cdpfd %s listening on %s (%d shards, queue %d/shard, max %d sessions)",
		version.String(), bound, cfg.shards, cfg.shardQueue, cfg.maxSessions)

	// Shared hardening timeouts (slowloris header trickle, idle keep-alives)
	// live in serve.NewHTTPServer so cdpfd and cdpfgw stay in lockstep.
	srv := serve.NewHTTPServer(handler)
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	if store != nil {
		t0 := time.Now()
		if err := mgr.Restore(recovery); err != nil {
			return fmt.Errorf("recovering sessions: %w", err)
		}
		c := store.Counters()
		log.Printf("cdpfd: recovered %d sessions (%d WAL batches replayed, %d torn tails truncated) in %v",
			c.RecoveredSessions.Load(), c.ReplayedBatches.Load(), c.TruncatedTails.Load(),
			time.Since(t0).Round(time.Millisecond))
		handler.SetRecovering(false)
	}

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	log.Printf("cdpfd: signal received, draining (%d iterations queued)", mgr.QueueDepth())
	mgr.Drain() // finish queued work, snapshot live sessions, close streams
	// With -drain-linger, the drained daemon lingers with /healthz reporting
	// "draining" and the admin export endpoint still answering: a gateway
	// probing the fleet sees the phase change and pulls every remaining
	// session off via export before this process exits. The linger ends early
	// the moment the session table is empty.
	if cfg.drainLinger > 0 && mgr.LiveSessions() > 0 {
		log.Printf("cdpfd: lingering up to %v for %d sessions to be evacuated", cfg.drainLinger, mgr.LiveSessions())
		lingerEnd := time.Now().Add(cfg.drainLinger)
		for time.Now().Before(lingerEnd) && mgr.LiveSessions() > 0 {
			time.Sleep(50 * time.Millisecond)
		}
		if left := mgr.LiveSessions(); left > 0 {
			log.Printf("cdpfd: linger expired with %d sessions still local (snapshots cover them)", left)
		} else {
			log.Printf("cdpfd: all sessions evacuated")
		}
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), cfg.drainTimeout)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if store != nil {
		if err := store.Close(); err != nil {
			return fmt.Errorf("closing durability store: %w", err)
		}
	}
	log.Printf("cdpfd: drained %d steps total, exiting", met.Steps())
	return nil
}
