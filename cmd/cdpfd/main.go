// Command cdpfd is the online tracking daemon: it hosts concurrent CDPF
// sessions over HTTP, ingesting measurement batches and streaming estimates
// back as Server-Sent Events (see internal/serve for the API and the
// determinism contract with the offline sim).
//
// Usage:
//
//	cdpfd [-addr HOST:PORT] [-shards N] [-shard-queue N] [-max-sessions N]
//	      [-addr-file FILE] [-drain-timeout D] [-version]
//
// The daemon drains gracefully on SIGINT/SIGTERM: admission stops (503),
// every queued iteration is stepped, estimate streams are closed, and the
// process exits 0. -addr-file writes the bound address (useful with -addr
// :0 for tests and CI smoke jobs).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/serve"
	"repro/internal/version"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:8723", "listen address (use :0 for an ephemeral port)")
		shards       = flag.Int("shards", runtime.GOMAXPROCS(0), "session shard (worker goroutine) count")
		shardQueue   = flag.Int("shard-queue", 256, "bounded work-queue depth per shard (503 when full)")
		maxSessions  = flag.Int("max-sessions", 4096, "live session limit")
		addrFile     = flag.String("addr-file", "", "write the bound address to this file once listening")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "maximum time to wait for connection drain after the queues empty")
		showVersion  = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *showVersion {
		fmt.Println("cdpfd", version.String())
		return
	}
	if err := run(*addr, *shards, *shardQueue, *maxSessions, *addrFile, *drainTimeout); err != nil {
		fmt.Fprintln(os.Stderr, "cdpfd:", err)
		os.Exit(1)
	}
}

func run(addr string, shards, shardQueue, maxSessions int, addrFile string, drainTimeout time.Duration) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	met := serve.NewMetrics(nil)
	mgr := serve.NewManager(serve.ManagerConfig{
		Shards: shards, ShardQueue: shardQueue, MaxSessions: maxSessions, Metrics: met,
	})
	met.SetQueueDepthFunc(mgr.QueueDepth)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	bound := ln.Addr().String()
	if addrFile != "" {
		tmp := addrFile + ".tmp"
		if err := os.WriteFile(tmp, []byte(bound+"\n"), 0o644); err != nil {
			return err
		}
		if err := os.Rename(tmp, addrFile); err != nil {
			return err
		}
	}
	log.Printf("cdpfd %s listening on %s (%d shards, queue %d/shard, max %d sessions)",
		version.String(), bound, shards, shardQueue, maxSessions)

	srv := &http.Server{Handler: serve.NewServer(mgr, met)}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	log.Printf("cdpfd: signal received, draining (%d iterations queued)", mgr.QueueDepth())
	mgr.Drain() // finish queued work, close streams, reject new admissions
	shutCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	log.Printf("cdpfd: drained %d steps total, exiting", met.Steps())
	return nil
}
