package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/scenario"
	"repro/internal/serve"
	"repro/internal/trace"
)

// TestCrashRecoveryByteIdentical is the headline durability test: build the
// real cdpfd binary, drive sessions over HTTP, kill -9 the daemon mid-run,
// restart it on the same data directory, finish every session, and diff each
// session's trace byte-for-byte against its uninterrupted offline twin.
func TestCrashRecoveryByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills a real daemon; skipped in -short")
	}
	workDir := t.TempDir()
	bin := filepath.Join(workDir, "cdpfd")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("building cdpfd: %v", err)
	}
	dataDir := filepath.Join(workDir, "data")

	specs := []serve.SessionSpec{
		{ID: "crash-a", Scenario: scenario.Default(10, 1201)},
		{ID: "crash-b", Scenario: scenario.Default(10, 1202), UseNE: true},
	}
	feeds := make(map[string][]serve.Batch, len(specs))
	for _, spec := range specs {
		batches, err := serve.Observations(spec)
		if err != nil {
			t.Fatal(err)
		}
		feeds[spec.ID] = batches
	}

	// Boot one: create both sessions, feed roughly half of each, and confirm
	// the daemon stepped them before the kill.
	d := startDaemon(t, bin, dataDir)
	for _, spec := range specs {
		d.create(t, spec)
	}
	const half = 5
	for _, spec := range specs {
		d.feed(t, spec.ID, feeds[spec.ID][:half])
	}
	for _, spec := range specs {
		d.waitStepped(t, spec.ID, half)
	}
	d.kill(t) // SIGKILL: no drain, no final snapshots, no goodbye

	// Boot two: same data directory, fresh ephemeral port. Recovery must
	// land every session exactly where the kill left it.
	d = startDaemon(t, bin, dataDir)
	defer d.stop(t)
	for _, spec := range specs {
		info := d.info(t, spec.ID)
		if info.Done || info.Stepped != half || info.NextK != half {
			t.Fatalf("session %q after restart: %+v, want stepped=%d live", spec.ID, info, half)
		}
	}
	for _, spec := range specs {
		d.feed(t, spec.ID, feeds[spec.ID][half:])
	}
	for _, spec := range specs {
		got := d.collect(t, spec.ID)
		offline, err := serve.OfflineTrace(spec)
		if err != nil {
			t.Fatal(err)
		}
		served := &trace.Recorder{Algo: offline.Algo, Density: offline.Density, Seed: offline.Seed, Records: got}
		var off, srv strings.Builder
		if err := offline.WriteCSV(&off); err != nil {
			t.Fatal(err)
		}
		if err := served.WriteCSV(&srv); err != nil {
			t.Fatal(err)
		}
		if off.String() != srv.String() {
			t.Fatalf("session %q: recovered trace differs from offline twin:\noffline:\n%s\nserved:\n%s",
				spec.ID, off.String(), srv.String())
		}
	}

	// The restarted daemon's metrics must account for the recovery.
	metrics := d.get(t, "/metrics")
	for _, want := range []string{"cdpfd_recovered_sessions_total 2", "cdpfd_wal_records_total"} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("metrics missing %q:\n%s", want, metrics)
		}
	}
}

// daemon drives one cdpfd process over HTTP in the crash tests.
type daemon struct {
	cmd  *exec.Cmd
	base string
}

// startDaemon launches the binary on an ephemeral port with durability
// enabled and waits for /healthz to say "ready" (which covers recovery).
func startDaemon(t *testing.T, bin, dataDir string) *daemon {
	t.Helper()
	addrFile := filepath.Join(t.TempDir(), "addr")
	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0", "-addr-file", addrFile,
		"-data-dir", dataDir, "-fsync", "interval", "-snapshot-every", "3",
		"-shards", "2")
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting cdpfd: %v", err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			t.Fatal("daemon never became ready")
		}
		data, err := os.ReadFile(addrFile)
		if err != nil || len(data) == 0 {
			time.Sleep(10 * time.Millisecond)
			continue
		}
		base := "http://" + strings.TrimSpace(string(data))
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK && strings.TrimSpace(string(body)) == "ready" {
				return &daemon{cmd: cmd, base: base}
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// kill delivers SIGKILL — the crash under test — and reaps the process.
func (d *daemon) kill(t *testing.T) {
	t.Helper()
	if err := d.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = d.cmd.Wait()
}

// stop shuts the daemon down gracefully (end-of-test cleanup).
func (d *daemon) stop(t *testing.T) {
	t.Helper()
	_ = d.cmd.Process.Signal(os.Interrupt)
	done := make(chan struct{})
	go func() { d.cmd.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		d.cmd.Process.Kill()
		t.Error("daemon did not exit on SIGINT")
	}
}

func (d *daemon) create(t *testing.T, spec serve.SessionSpec) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(d.base+"/v1/sessions", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("create %q: HTTP %d: %s", spec.ID, resp.StatusCode, msg)
	}
}

// feed posts batches one at a time, retrying 429/503 (budget backpressure).
func (d *daemon) feed(t *testing.T, id string, batches []serve.Batch) {
	t.Helper()
	for _, b := range batches {
		body, err := json.Marshal(serve.IngestRequest{Batches: []serve.Batch{b}})
		if err != nil {
			t.Fatal(err)
		}
		deadline := time.Now().Add(30 * time.Second)
		for {
			if time.Now().After(deadline) {
				t.Fatalf("feeding %q k=%d never accepted", id, b.K)
			}
			resp, err := http.Post(d.base+"/v1/sessions/"+id+"/measurements", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			status := resp.StatusCode
			msg, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if status == http.StatusAccepted {
				break
			}
			if status != http.StatusTooManyRequests && status != http.StatusServiceUnavailable {
				t.Fatalf("feeding %q k=%d: HTTP %d: %s", id, b.K, status, msg)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
}

func (d *daemon) info(t *testing.T, id string) serve.SessionInfo {
	t.Helper()
	resp, err := http.Get(d.base + "/v1/sessions/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("info %q: HTTP %d: %s", id, resp.StatusCode, msg)
	}
	var info serve.SessionInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	return info
}

func (d *daemon) waitStepped(t *testing.T, id string, n int) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if d.info(t, id).Stepped >= n {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("session %q never reached %d steps", id, n)
}

// collect reads the session's full SSE estimate stream.
func (d *daemon) collect(t *testing.T, id string) []trace.Record {
	t.Helper()
	resp, err := http.Get(d.base + "/v1/sessions/" + id + "/estimates")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("estimates %q: HTTP %d: %s", id, resp.StatusCode, msg)
	}
	var recs []trace.Record
	event := ""
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			if event == "done" {
				return recs
			}
			if event != "estimate" {
				continue
			}
			var rec trace.Record
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &rec); err != nil {
				t.Fatalf("bad estimate event: %v", err)
			}
			recs = append(recs, rec)
		}
	}
	return recs
}

func (d *daemon) get(t *testing.T, path string) string {
	t.Helper()
	resp, err := http.Get(d.base + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// TestDurabilityFlagValidation: a bad -fsync value must fail startup.
func TestDurabilityFlagValidation(t *testing.T) {
	err := run(config{
		addr: "127.0.0.1:0", shards: 1, shardQueue: 4, maxSessions: 4,
		dataDir: t.TempDir(), fsync: "sometimes", drainTimeout: time.Second,
	})
	if err == nil {
		t.Fatal("bad fsync policy accepted")
	}
	if !strings.Contains(err.Error(), "fsync") {
		t.Fatalf("unexpected error: %v", err)
	}
}
