package main

import (
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"
)

// TestRunServesAndDrainsOnSIGTERM boots the daemon on an ephemeral port,
// confirms it serves /healthz and /metrics, then delivers SIGTERM to the test
// process and requires run() to drain and return nil — the graceful-shutdown
// contract the CI smoke job also asserts from the outside.
func TestRunServesAndDrainsOnSIGTERM(t *testing.T) {
	addrFile := filepath.Join(t.TempDir(), "cdpfd.addr")
	done := make(chan error, 1)
	go func() {
		done <- run(config{
			addr: "127.0.0.1:0", shards: 2, shardQueue: 16, maxSessions: 64,
			addrFile: addrFile, drainTimeout: 10 * time.Second,
		})
	}()

	var addr string
	deadline := time.Now().Add(10 * time.Second)
	for addr == "" {
		if time.Now().After(deadline) {
			t.Fatal("daemon never wrote its address file")
		}
		if data, err := os.ReadFile(addrFile); err == nil && len(data) > 0 {
			addr = string(data[:len(data)-1]) // trailing newline
		} else {
			time.Sleep(10 * time.Millisecond)
		}
	}

	for _, path := range []string{"/healthz", "/metrics"} {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", addr, path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: HTTP %d", path, resp.StatusCode)
		}
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v after SIGTERM, want nil", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}
}
