package main

import (
	"testing"

	"repro/internal/wsn"
)

func TestRunValidConfig(t *testing.T) {
	cfg := wsn.Config{Width: 100, Height: 100, Density: 5, CommRadius: 30, SensingRadius: 10}
	if err := run(cfg, 1); err != nil {
		t.Fatal(err)
	}
}

func TestRunInvalidConfig(t *testing.T) {
	cfg := wsn.Config{Width: 0, Height: 100, Density: 5, CommRadius: 30, SensingRadius: 10}
	if err := run(cfg, 1); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestBars(t *testing.T) {
	if bars(0) != "" || bars(3) != "###" {
		t.Fatalf("bars wrong: %q %q", bars(0), bars(3))
	}
}
