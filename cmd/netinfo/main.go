// Command netinfo inspects a deployment: realized density, neighborhood
// statistics, connectivity to a central sink, hop-count histogram, and the
// quantities Table I is evaluated with. Useful for sanity-checking custom
// configurations before running experiments on them.
//
// Usage:
//
//	netinfo [-density D] [-width W] [-height H] [-rs R] [-rc R] [-seed S]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/mathx"
	"repro/internal/version"
	"repro/internal/wsn"
)

func main() {
	var (
		density     = flag.Float64("density", 20, "node density (nodes per 100 m²)")
		width       = flag.Float64("width", 200, "field width (m)")
		height      = flag.Float64("height", 200, "field height (m)")
		rs          = flag.Float64("rs", 10, "sensing radius (m)")
		rc          = flag.Float64("rc", 30, "communication radius (m)")
		seed        = flag.Uint64("seed", 1, "deployment seed")
		showVersion = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *showVersion {
		fmt.Println("netinfo", version.String())
		return
	}

	cfg := wsn.Config{
		Width: *width, Height: *height,
		Density:    *density,
		CommRadius: *rc, SensingRadius: *rs,
	}
	if err := run(cfg, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "netinfo:", err)
		os.Exit(1)
	}
}

func run(cfg wsn.Config, seed uint64) error {
	nw, err := wsn.NewNetwork(cfg, mathx.NewRNG(seed))
	if err != nil {
		return err
	}
	fmt.Printf("deployment: %d nodes over %.0fx%.0f m (density %.2f /100m²), rs=%.0f m, rc=%.0f m\n",
		nw.Len(), cfg.Width, cfg.Height, nw.Density(), cfg.SensingRadius, cfg.CommRadius)

	// Neighborhood statistics over a sample of nodes.
	sample := nw.Len()
	if sample > 2000 {
		sample = 2000
	}
	var degrees []float64
	for i := 0; i < sample; i++ {
		degrees = append(degrees, float64(len(nw.Neighbors(wsn.NodeID(i)))))
	}
	sort.Float64s(degrees)
	fmt.Printf("one-hop degree (n=%d sample): mean %.1f, median %.0f, min %.0f, max %.0f\n",
		sample, mathx.Mean(degrees), mathx.Quantile(degrees, 0.5),
		degrees[0], degrees[len(degrees)-1])

	// Expected detection workload: nodes whose sensing disc covers a point.
	detectorsPerPoint := nw.Density() / 100 * 3.14159 * cfg.SensingRadius * cfg.SensingRadius
	fmt.Printf("expected detectors per target position: %.1f\n", detectorsPerPoint)

	// Connectivity to the central sink.
	sink := nw.NearestNode(nw.Center())
	ht := nw.BuildHopTable(sink)
	fmt.Printf("sink: node %d at %v\n", sink, nw.Node(sink).Pos)
	fmt.Printf("connectivity: %d of %d nodes reach the sink (H_max = %d)\n",
		ht.Reachable(), nw.Len(), ht.MaxHops())

	hist := map[int]int{}
	maxH := 0
	for _, nd := range nw.Nodes {
		h := ht.HopsFrom(nd.ID)
		hist[h]++
		if h > maxH {
			maxH = h
		}
	}
	fmt.Println("hop-count histogram:")
	for h := 0; h <= maxH; h++ {
		if hist[h] == 0 {
			continue
		}
		bar := hist[h] * 60 / nw.Len()
		fmt.Printf("  %2d hops %6d %s\n", h, hist[h], bars(bar))
	}
	if hist[-1] > 0 {
		fmt.Printf("  unreachable: %d\n", hist[-1])
	}
	return nil
}

func bars(n int) string {
	out := make([]byte, n)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}
