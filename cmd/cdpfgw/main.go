// Command cdpfgw is the cluster gateway for cdpfd: a stateless HTTP front
// door that routes every session-scoped request to the backend that owns the
// session under rendezvous hashing, falls through the ring when a backend
// does not have it, and live-migrates sessions off draining backends (see
// internal/gateway and internal/ring).
//
// Usage:
//
//	cdpfgw -backends NAME=HOST:PORT,NAME=HOST:PORT,...
//	       [-addr HOST:PORT] [-addr-file FILE] [-probe-every D]
//	       [-export-retry D] [-drain-timeout D] [-version]
//
// The gateway probes every backend's /healthz on -probe-every. When a
// backend transitions to "draining" (a cdpfd that received SIGTERM with
// -drain-linger set), the gateway automatically evacuates it: each of its
// live sessions is exported at a step boundary and imported into its new
// ring owner, while client requests for in-flight sessions are held, not
// failed. Explicit evacuation is POST /admin/migrate?backend=NAME.
//
// Endpoints: the full cdpfd /v1 session API (proxied), /cluster (topology +
// per-backend session census), /metrics (gateway counters + per-metric sums
// across backends), /healthz (200 "ready" while any backend can own
// sessions).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/gateway"
	"repro/internal/ring"
	"repro/internal/serve"
	"repro/internal/version"
)

type config struct {
	addr         string
	addrFile     string
	backends     string
	probeEvery   time.Duration
	exportRetry  time.Duration
	drainTimeout time.Duration
}

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", "127.0.0.1:8780", "listen address (use :0 for an ephemeral port)")
	flag.StringVar(&cfg.addrFile, "addr-file", "", "write the bound address to this file once listening")
	flag.StringVar(&cfg.backends, "backends", "", "comma-separated NAME=HOST:PORT backend list (required)")
	flag.DurationVar(&cfg.probeEvery, "probe-every", 500*time.Millisecond, "backend /healthz probe interval")
	flag.DurationVar(&cfg.exportRetry, "export-retry", 15*time.Second, "how long one session export is retried while the session is busy")
	flag.DurationVar(&cfg.drainTimeout, "drain-timeout", 10*time.Second, "maximum time to wait for connection drain on shutdown")
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println("cdpfgw", version.String())
		return
	}
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "cdpfgw:", err)
		os.Exit(1)
	}
}

// parseBackends turns "b0=127.0.0.1:9000,b1=127.0.0.1:9001" into ring
// backends; bare addresses gain an http:// scheme.
func parseBackends(s string) ([]ring.Backend, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("-backends is required (NAME=HOST:PORT,...)")
	}
	var out []ring.Backend
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, addr, ok := strings.Cut(part, "=")
		if !ok || name == "" || addr == "" {
			return nil, fmt.Errorf("bad backend %q, want NAME=HOST:PORT", part)
		}
		if !strings.Contains(addr, "://") {
			addr = "http://" + addr
		}
		out = append(out, ring.Backend{Name: name, Addr: strings.TrimRight(addr, "/")})
	}
	return out, nil
}

func run(cfg config) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	backends, err := parseBackends(cfg.backends)
	if err != nil {
		return err
	}
	r, err := ring.New(backends)
	if err != nil {
		return err
	}
	gw, err := gateway.New(gateway.Config{Ring: r, ExportRetry: cfg.exportRetry})
	if err != nil {
		return err
	}

	// The prober drives auto-evacuation: the moment a backend reports
	// "draining", its sessions are pulled off it (MigrateBackend is
	// idempotent, so repeated probe transitions cannot double-move).
	prober := &ring.Prober{
		Ring:     r,
		Interval: cfg.probeEvery,
		OnTransition: func(name string, from, to ring.Health) {
			log.Printf("cdpfgw: backend %s: %s -> %s", name, from, to)
			if to == ring.Draining {
				go func() {
					rep, err := gw.MigrateBackend(ctx, name)
					if err != nil {
						log.Printf("cdpfgw: evacuating %s: %v", name, err)
						return
					}
					log.Printf("cdpfgw: evacuated %s: %d moved, %d skipped, %d errors",
						name, len(rep.Moved), len(rep.Skipped), len(rep.Errors))
					for _, e := range rep.Errors {
						log.Printf("cdpfgw: evacuation error: %s", e)
					}
				}()
			}
		},
	}
	go prober.Run(ctx)

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	bound := ln.Addr().String()
	if cfg.addrFile != "" {
		tmp := cfg.addrFile + ".tmp"
		if err := os.WriteFile(tmp, []byte(bound+"\n"), 0o644); err != nil {
			return err
		}
		if err := os.Rename(tmp, cfg.addrFile); err != nil {
			return err
		}
	}
	log.Printf("cdpfgw %s listening on %s, %d backends", version.String(), bound, len(backends))

	srv := serve.NewHTTPServer(gw)
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	log.Printf("cdpfgw: signal received, shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), cfg.drainTimeout)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	return nil
}
