// Command cdpfgw is the cluster gateway for cdpfd: a stateless HTTP front
// door that routes every session-scoped request to the backend that owns the
// session under rendezvous hashing, falls through the ring when a backend
// does not have it, and live-migrates sessions off draining backends (see
// internal/gateway and internal/ring).
//
// Usage:
//
//	cdpfgw -backends NAME=HOST:PORT,NAME=HOST:PORT,...
//	       [-addr HOST:PORT] [-addr-file FILE]
//	       [-probe-every D] [-probe-flap K] [-probe-jitter F]
//	       [-export-retry D] [-export-backoff D] [-export-backoff-max D]
//	       [-route-passes N] [-route-backoff D] [-route-backoff-max D]
//	       [-park-timeout D] [-breaker-failures N] [-breaker-cooldown D]
//	       [-attempt-timeout D] [-census-timeout D] [-scrape-timeout D]
//	       [-drain-timeout D] [-version]
//
// The gateway probes every backend's /healthz on -probe-every. When a
// backend transitions to "draining" (a cdpfd that received SIGTERM with
// -drain-linger set), the gateway automatically evacuates it: each of its
// live sessions is exported at a step boundary and imported into its new
// ring owner, while client requests for in-flight sessions are held, not
// failed. Explicit evacuation is POST /admin/migrate?backend=NAME.
//
// Endpoints: the full cdpfd /v1 session API (proxied), /cluster (topology +
// per-backend session census), /metrics (gateway counters + per-metric sums
// across backends), /healthz (200 "ready" while any backend can own
// sessions).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/gateway"
	"repro/internal/ring"
	"repro/internal/serve"
	"repro/internal/version"
)

type config struct {
	addr         string
	addrFile     string
	backends     string
	probeEvery   time.Duration
	probeFlap    int
	probeJitter  float64
	exportRetry  time.Duration
	drainTimeout time.Duration

	// data-path hardening knobs (defaults match the gateway's built-ins)
	censusTimeout    time.Duration
	scrapeTimeout    time.Duration
	attemptTimeout   time.Duration
	exportBackoff    time.Duration
	exportBackoffMax time.Duration
	routePasses      int
	routeBackoff     time.Duration
	routeBackoffMax  time.Duration
	parkTimeout      time.Duration
	breakerFailures  int
	breakerCooldown  time.Duration
}

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", "127.0.0.1:8780", "listen address (use :0 for an ephemeral port)")
	flag.StringVar(&cfg.addrFile, "addr-file", "", "write the bound address to this file once listening")
	flag.StringVar(&cfg.backends, "backends", "", "comma-separated NAME=HOST:PORT backend list (required)")
	flag.DurationVar(&cfg.probeEvery, "probe-every", 500*time.Millisecond, "backend /healthz probe interval")
	flag.IntVar(&cfg.probeFlap, "probe-flap", 2, "consecutive identical probes required for a ready<->down flip (1 disables damping)")
	flag.Float64Var(&cfg.probeJitter, "probe-jitter", 0.2, "probe interval jitter fraction in [0,1]")
	flag.DurationVar(&cfg.exportRetry, "export-retry", 15*time.Second, "how long one session export is retried while the session is busy")
	flag.DurationVar(&cfg.drainTimeout, "drain-timeout", 10*time.Second, "maximum time to wait for connection drain on shutdown")
	flag.DurationVar(&cfg.censusTimeout, "census-timeout", 2*time.Second, "per-backend session census poll timeout (/cluster)")
	flag.DurationVar(&cfg.scrapeTimeout, "scrape-timeout", 2*time.Second, "per-backend /metrics scrape timeout")
	flag.DurationVar(&cfg.attemptTimeout, "attempt-timeout", 10*time.Second, "one buffered proxy attempt's timeout")
	flag.DurationVar(&cfg.exportBackoff, "export-backoff", 2*time.Millisecond, "base backoff between busy-session export retries")
	flag.DurationVar(&cfg.exportBackoffMax, "export-backoff-max", 50*time.Millisecond, "backoff ceiling between busy-session export retries")
	flag.IntVar(&cfg.routePasses, "route-passes", 4, "route-chain passes before a miss is authoritative")
	flag.DurationVar(&cfg.routeBackoff, "route-backoff", 25*time.Millisecond, "base backoff between route-chain passes")
	flag.DurationVar(&cfg.routeBackoffMax, "route-backoff-max", 250*time.Millisecond, "backoff ceiling between route-chain passes")
	flag.DurationVar(&cfg.parkTimeout, "park-timeout", 30*time.Second, "how long requests park while the fleet is unsettled before failing")
	flag.IntVar(&cfg.breakerFailures, "breaker-failures", 5, "consecutive connection failures that open a backend's breaker")
	flag.DurationVar(&cfg.breakerCooldown, "breaker-cooldown", time.Second, "open-breaker cooldown before a half-open probe")
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println("cdpfgw", version.String())
		return
	}
	if err := cfg.validate(); err != nil {
		fmt.Fprintln(os.Stderr, "cdpfgw:", err)
		os.Exit(2)
	}
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "cdpfgw:", err)
		os.Exit(1)
	}
}

// validate rejects nonsensical knob combinations before anything binds.
func (cfg config) validate() error {
	switch {
	case cfg.probeEvery <= 0:
		return fmt.Errorf("-probe-every must be positive, got %v", cfg.probeEvery)
	case cfg.probeFlap < 1:
		return fmt.Errorf("-probe-flap must be >= 1, got %d", cfg.probeFlap)
	case cfg.probeJitter < 0 || cfg.probeJitter > 1:
		return fmt.Errorf("-probe-jitter must be in [0,1], got %v", cfg.probeJitter)
	case cfg.exportRetry <= 0:
		return fmt.Errorf("-export-retry must be positive, got %v", cfg.exportRetry)
	case cfg.drainTimeout <= 0:
		return fmt.Errorf("-drain-timeout must be positive, got %v", cfg.drainTimeout)
	case cfg.censusTimeout <= 0:
		return fmt.Errorf("-census-timeout must be positive, got %v", cfg.censusTimeout)
	case cfg.scrapeTimeout <= 0:
		return fmt.Errorf("-scrape-timeout must be positive, got %v", cfg.scrapeTimeout)
	case cfg.attemptTimeout <= 0:
		return fmt.Errorf("-attempt-timeout must be positive, got %v", cfg.attemptTimeout)
	case cfg.exportBackoff <= 0:
		return fmt.Errorf("-export-backoff must be positive, got %v", cfg.exportBackoff)
	case cfg.exportBackoffMax < cfg.exportBackoff:
		return fmt.Errorf("-export-backoff-max (%v) must be >= -export-backoff (%v)",
			cfg.exportBackoffMax, cfg.exportBackoff)
	case cfg.routePasses < 1:
		return fmt.Errorf("-route-passes must be >= 1, got %d", cfg.routePasses)
	case cfg.routeBackoff <= 0:
		return fmt.Errorf("-route-backoff must be positive, got %v", cfg.routeBackoff)
	case cfg.routeBackoffMax < cfg.routeBackoff:
		return fmt.Errorf("-route-backoff-max (%v) must be >= -route-backoff (%v)",
			cfg.routeBackoffMax, cfg.routeBackoff)
	case cfg.parkTimeout <= 0:
		return fmt.Errorf("-park-timeout must be positive, got %v", cfg.parkTimeout)
	case cfg.breakerFailures < 1:
		return fmt.Errorf("-breaker-failures must be >= 1, got %d", cfg.breakerFailures)
	case cfg.breakerCooldown <= 0:
		return fmt.Errorf("-breaker-cooldown must be positive, got %v", cfg.breakerCooldown)
	}
	return nil
}

// parseBackends turns "b0=127.0.0.1:9000,b1=127.0.0.1:9001" into ring
// backends; bare addresses gain an http:// scheme.
func parseBackends(s string) ([]ring.Backend, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("-backends is required (NAME=HOST:PORT,...)")
	}
	var out []ring.Backend
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, addr, ok := strings.Cut(part, "=")
		if !ok || name == "" || addr == "" {
			return nil, fmt.Errorf("bad backend %q, want NAME=HOST:PORT", part)
		}
		if !strings.Contains(addr, "://") {
			addr = "http://" + addr
		}
		out = append(out, ring.Backend{Name: name, Addr: strings.TrimRight(addr, "/")})
	}
	return out, nil
}

func run(cfg config) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	backends, err := parseBackends(cfg.backends)
	if err != nil {
		return err
	}
	r, err := ring.New(backends)
	if err != nil {
		return err
	}
	gw, err := gateway.New(gateway.Config{
		Ring:             r,
		ExportRetry:      cfg.exportRetry,
		ExportBackoff:    cfg.exportBackoff,
		ExportBackoffMax: cfg.exportBackoffMax,
		Route: gateway.RetryConfig{
			Passes: cfg.routePasses,
			Base:   cfg.routeBackoff,
			Max:    cfg.routeBackoffMax,
		},
		ParkTimeout:    cfg.parkTimeout,
		AttemptTimeout: cfg.attemptTimeout,
		CensusTimeout:  cfg.censusTimeout,
		ScrapeTimeout:  cfg.scrapeTimeout,
		Breaker: gateway.BreakerConfig{
			Failures: cfg.breakerFailures,
			Cooldown: cfg.breakerCooldown,
		},
	})
	if err != nil {
		return err
	}

	// The prober drives auto-evacuation: the moment a backend reports
	// "draining", its sessions are pulled off it (MigrateBackend is
	// idempotent, so repeated probe transitions cannot double-move). Every
	// transition is also fed to the gateway so a Ready backend gets its
	// breaker closed without waiting out a cooldown.
	prober := &ring.Prober{
		Ring:     r,
		Interval: cfg.probeEvery,
		FlapK:    cfg.probeFlap,
		Jitter:   cfg.probeJitter,
		OnTransition: func(name string, from, to ring.Health) {
			log.Printf("cdpfgw: backend %s: %s -> %s", name, from, to)
			gw.NoteHealth(name, from, to)
			if to == ring.Draining {
				go func() {
					rep, err := gw.MigrateBackend(ctx, name)
					if err != nil {
						log.Printf("cdpfgw: evacuating %s: %v", name, err)
						return
					}
					log.Printf("cdpfgw: evacuated %s: %d moved, %d skipped, %d errors",
						name, len(rep.Moved), len(rep.Skipped), len(rep.Errors))
					for _, e := range rep.Errors {
						log.Printf("cdpfgw: evacuation error: %s", e)
					}
				}()
			}
		},
	}
	go prober.Run(ctx)

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	bound := ln.Addr().String()
	if cfg.addrFile != "" {
		tmp := cfg.addrFile + ".tmp"
		if err := os.WriteFile(tmp, []byte(bound+"\n"), 0o644); err != nil {
			return err
		}
		if err := os.Rename(tmp, cfg.addrFile); err != nil {
			return err
		}
	}
	log.Printf("cdpfgw %s listening on %s, %d backends", version.String(), bound, len(backends))

	srv := serve.NewHTTPServer(gw)
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	log.Printf("cdpfgw: signal received, shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), cfg.drainTimeout)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	return nil
}
