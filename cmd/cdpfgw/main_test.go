package main

import (
	"testing"
	"time"
)

func TestParseBackends(t *testing.T) {
	bks, err := parseBackends("b0=127.0.0.1:9000, b1=127.0.0.1:9001 ,b2=http://127.0.0.1:9002/")
	if err != nil {
		t.Fatal(err)
	}
	if len(bks) != 3 {
		t.Fatalf("parsed %d backends, want 3", len(bks))
	}
	want := map[string]string{
		"b0": "http://127.0.0.1:9000",
		"b1": "http://127.0.0.1:9001",
		"b2": "http://127.0.0.1:9002",
	}
	for _, b := range bks {
		if want[b.Name] != b.Addr {
			t.Errorf("backend %s has addr %q, want %q", b.Name, b.Addr, want[b.Name])
		}
	}
	for _, bad := range []string{"", "b0", "=addr", "b0="} {
		if _, err := parseBackends(bad); err == nil {
			t.Errorf("parseBackends(%q) accepted", bad)
		}
	}
}

// defaults mirrors main()'s flag defaults; tests mutate one knob at a time.
func defaults() config {
	return config{
		addr:             "127.0.0.1:0",
		backends:         "b0=127.0.0.1:9000",
		probeEvery:       500 * time.Millisecond,
		probeFlap:        2,
		probeJitter:      0.2,
		exportRetry:      15 * time.Second,
		drainTimeout:     10 * time.Second,
		censusTimeout:    2 * time.Second,
		scrapeTimeout:    2 * time.Second,
		attemptTimeout:   10 * time.Second,
		exportBackoff:    2 * time.Millisecond,
		exportBackoffMax: 50 * time.Millisecond,
		routePasses:      4,
		routeBackoff:     25 * time.Millisecond,
		routeBackoffMax:  250 * time.Millisecond,
		parkTimeout:      30 * time.Second,
		breakerFailures:  5,
		breakerCooldown:  time.Second,
	}
}

func TestValidateDefaults(t *testing.T) {
	if err := defaults().validate(); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*config)
	}{
		{"zero probe interval", func(c *config) { c.probeEvery = 0 }},
		{"flap below one", func(c *config) { c.probeFlap = 0 }},
		{"jitter above one", func(c *config) { c.probeJitter = 1.5 }},
		{"negative jitter", func(c *config) { c.probeJitter = -0.1 }},
		{"zero export retry", func(c *config) { c.exportRetry = 0 }},
		{"zero drain timeout", func(c *config) { c.drainTimeout = 0 }},
		{"zero census timeout", func(c *config) { c.censusTimeout = 0 }},
		{"zero scrape timeout", func(c *config) { c.scrapeTimeout = 0 }},
		{"zero attempt timeout", func(c *config) { c.attemptTimeout = 0 }},
		{"zero export backoff", func(c *config) { c.exportBackoff = 0 }},
		{"export backoff max below base", func(c *config) { c.exportBackoffMax = time.Millisecond }},
		{"zero route passes", func(c *config) { c.routePasses = 0 }},
		{"zero route backoff", func(c *config) { c.routeBackoff = 0 }},
		{"route backoff max below base", func(c *config) { c.routeBackoffMax = time.Millisecond }},
		{"zero park timeout", func(c *config) { c.parkTimeout = 0 }},
		{"zero breaker failures", func(c *config) { c.breakerFailures = 0 }},
		{"zero breaker cooldown", func(c *config) { c.breakerCooldown = 0 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := defaults()
			tc.mut(&cfg)
			if err := cfg.validate(); err == nil {
				t.Fatal("bad config accepted")
			}
		})
	}
}
