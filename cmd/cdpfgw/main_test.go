package main

import "testing"

func TestParseBackends(t *testing.T) {
	bks, err := parseBackends("b0=127.0.0.1:9000, b1=127.0.0.1:9001 ,b2=http://127.0.0.1:9002/")
	if err != nil {
		t.Fatal(err)
	}
	if len(bks) != 3 {
		t.Fatalf("parsed %d backends, want 3", len(bks))
	}
	want := map[string]string{
		"b0": "http://127.0.0.1:9000",
		"b1": "http://127.0.0.1:9001",
		"b2": "http://127.0.0.1:9002",
	}
	for _, b := range bks {
		if want[b.Name] != b.Addr {
			t.Errorf("backend %s has addr %q, want %q", b.Name, b.Addr, want[b.Name])
		}
	}
	for _, bad := range []string{"", "b0", "=addr", "b0="} {
		if _, err := parseBackends(bad); err == nil {
			t.Errorf("parseBackends(%q) accepted", bad)
		}
	}
}
