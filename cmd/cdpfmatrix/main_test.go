package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/benchfmt"
	"repro/internal/experiments"
	"repro/internal/spec"
)

// gridSpec is the 12-cell smoke grid: algo × loss × seed at density 10 with
// bursty loss, 5 steps (6 iterations) per cell.
const gridSpec = `{
  "version": "spec/v1",
  "name": "smoke",
  "base": {"density": 10, "steps": 5, "burst": 3},
  "grid": {
    "loss": [0, 0.3],
    "algo": ["cdpf", "cdpf-ne"],
    "seed": [31, 62, 93]
  }
}`

func writeSpec(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "grid.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func runMatrix(t *testing.T, o options) string {
	t.Helper()
	var buf bytes.Buffer
	if err := run(context.Background(), o, &buf); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, buf.String())
	}
	return buf.String()
}

// readTraces returns every cell's trace.csv bytes keyed by cell name.
func readTraces(t *testing.T, dir string) map[string]string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]string)
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name(), "trace.csv"))
		if err != nil {
			t.Fatal(err)
		}
		out[e.Name()] = string(data)
	}
	return out
}

func TestRunExecutesGridAndResumes(t *testing.T) {
	specPath := writeSpec(t, gridSpec)
	outDir := filepath.Join(t.TempDir(), "out")
	benchPath := filepath.Join(t.TempDir(), "BENCH_matrix.json")
	o := options{spec: specPath, out: outDir, parallel: 4, benchJSON: benchPath, note: "smoke"}

	out := runMatrix(t, o)
	if !strings.Contains(out, "spec smoke: 12 cells, 12 matched, 12 executed, 0 skipped") {
		t.Fatalf("unexpected summary:\n%s", out)
	}
	ms, _, err := benchfmt.ParseBench(strings.NewReader(out))
	if err != nil {
		t.Fatalf("bench text unparseable: %v", err)
	}
	if ms["BenchmarkMatrixExpansion"].AllocsPerOp != 12 {
		t.Errorf("expansion metric: %+v", ms["BenchmarkMatrixExpansion"])
	}
	if ms["BenchmarkMatrixCells"].JobsPerSec <= 0 {
		t.Errorf("cell throughput not reported: %+v", ms["BenchmarkMatrixCells"])
	}
	b, err := benchfmt.ReadBaseline(benchPath)
	if err != nil {
		t.Fatal(err)
	}
	if b.Schema != "bench-matrix/v1" || b.Note != "smoke" || len(b.Baseline) != 3 {
		t.Errorf("unexpected baseline: %+v", b)
	}

	// Second invocation with -resume executes nothing and rewrites nothing.
	before := readTraces(t, outDir)
	o.resume = true
	o.benchJSON = ""
	out = runMatrix(t, o)
	if !strings.Contains(out, "12 cells, 12 matched, 0 executed, 12 skipped") {
		t.Fatalf("resume re-executed cells:\n%s", out)
	}
	after := readTraces(t, outDir)
	if len(before) != 12 || len(after) != 12 {
		t.Fatalf("cell dirs: %d before, %d after", len(before), len(after))
	}
	for name, tr := range before {
		if after[name] != tr {
			t.Errorf("resume rewrote %s", name)
		}
	}
}

// TestRunParallelAndStandaloneIdentity is the determinism contract at the
// CLI level: a -parallel 1 run, a -parallel 4 run, and a standalone re-run
// of each cell's resolved cell.json all produce byte-identical trace CSVs.
func TestRunParallelAndStandaloneIdentity(t *testing.T) {
	specPath := writeSpec(t, gridSpec)
	serial := filepath.Join(t.TempDir(), "serial")
	parallel := filepath.Join(t.TempDir(), "parallel")
	runMatrix(t, options{spec: specPath, out: serial, parallel: 1})
	runMatrix(t, options{spec: specPath, out: parallel, parallel: 4})

	st, pt := readTraces(t, serial), readTraces(t, parallel)
	if len(st) != 12 || len(pt) != 12 {
		t.Fatalf("cell dirs: %d serial, %d parallel", len(st), len(pt))
	}
	for name, tr := range st {
		if pt[name] != tr {
			t.Errorf("parallel trace differs for %s", name)
		}
	}

	// Standalone re-run from the resolved cell spec written into each dir.
	for name, tr := range st {
		cell, _, err := spec.LoadCell(filepath.Join(serial, name, "cell.json"))
		if err != nil {
			t.Fatal(err)
		}
		out, err := experiments.RunCell(context.Background(), cell.Axes)
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		if err := out.Trace.WriteCSV(&sb); err != nil {
			t.Fatal(err)
		}
		if sb.String() != tr {
			t.Errorf("standalone re-run differs for %s", name)
		}
	}
}

func TestRunFilter(t *testing.T) {
	specPath := writeSpec(t, gridSpec)
	outDir := filepath.Join(t.TempDir(), "out")
	o := options{spec: specPath, out: outDir, parallel: 2, filter: "algo=cdpf,loss=0.3"}
	out := runMatrix(t, o)
	if !strings.Contains(out, "12 cells, 3 matched, 3 executed, 0 skipped") {
		t.Fatalf("unexpected filtered summary:\n%s", out)
	}
	if got := readTraces(t, outDir); len(got) != 3 {
		t.Errorf("filtered run wrote %d cell dirs, want 3", len(got))
	}
}

func TestRunListDoesNotExecute(t *testing.T) {
	specPath := writeSpec(t, gridSpec)
	outDir := filepath.Join(t.TempDir(), "out")
	out := runMatrix(t, options{spec: specPath, out: outDir, parallel: 2, list: true})
	if !strings.Contains(out, "12 cells, 12 matched") {
		t.Fatalf("unexpected list output:\n%s", out)
	}
	if !strings.Contains(out, "loss=0.3,algo=cdpf-ne,seed=93") {
		t.Fatalf("list missing cell names:\n%s", out)
	}
	if _, err := os.Stat(outDir); !os.IsNotExist(err) {
		t.Errorf("-list created the output dir (err=%v)", err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	specPath := writeSpec(t, gridSpec)
	cases := []struct {
		name string
		o    options
		want string
	}{
		{"no spec", options{parallel: 1}, "-spec"},
		{"bad parallel", options{spec: specPath}, "-parallel"},
		{"bad filter pair", options{spec: specPath, parallel: 1, filter: "algo"}, "axis=value"},
		{"unknown filter axis", options{spec: specPath, parallel: 1, filter: "bogus=1"}, "bogus"},
		{"unknown list axis", options{spec: specPath, parallel: 1, list: true, filter: "bogus=1"}, "bogus"},
		{"missing file", options{spec: filepath.Join(t.TempDir(), "nope.json"), parallel: 1}, "nope.json"},
	}
	for _, c := range cases {
		c.o.out = t.TempDir()
		var buf bytes.Buffer
		err := run(context.Background(), c.o, &buf)
		if err == nil {
			t.Fatalf("%s: accepted", c.name)
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %s", c.name, err, c.want)
		}
	}
}
