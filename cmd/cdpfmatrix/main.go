// Command cdpfmatrix expands a declarative spec/v1 grid (internal/spec) into
// its cells and executes every cell into a per-cell result directory on the
// internal/fleet runtime. Each directory holds the per-iteration trace CSV,
// the resolved single-cell spec (re-runnable standalone via
// `cdpfsim -spec dir/cell.json`), and — written last — a manifest recording
// seed, code version, wall time, and summary metrics. Every cell's outputs
// are a pure function of its axes, so any -parallel count, any -resume
// continuation, and any standalone re-run produce byte-identical trace CSVs.
//
// Usage:
//
//	cdpfmatrix -spec FILE [-out DIR] [-parallel N] [-resume]
//	           [-filter axis=value,...] [-list] [-progress]
//	           [-benchjson FILE] [-note STRING] [-version]
//
// -resume skips cells whose directory already holds a complete manifest, so
// an interrupted matrix continues where it stopped (manifests are written
// via rename; a torn run never looks complete). -filter restricts execution
// to cells whose resolved axes match every axis=value pair; -list prints the
// expansion (with filter/resume dispositions) without running anything.
// -benchjson records matrix throughput as a bench-matrix/v1 baseline for the
// cmd/benchdiff performance gate.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro/internal/benchfmt"
	"repro/internal/experiments"
	"repro/internal/fleet"
	"repro/internal/spec"
	"repro/internal/version"
)

// options carries the parsed command line.
type options struct {
	spec      string
	out       string
	parallel  int
	resume    bool
	filter    string
	list      bool
	progress  bool
	benchJSON string
	note      string
}

func main() {
	var o options
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.StringVar(&o.spec, "spec", "", "spec/v1 grid file to expand and run (required)")
	flag.StringVar(&o.out, "out", "matrix-out", "output root; each cell writes OUT/<cellname>/")
	flag.IntVar(&o.parallel, "parallel", runtime.GOMAXPROCS(0), "fleet workers executing cells (output is identical at any count)")
	flag.BoolVar(&o.resume, "resume", false, "skip cells whose directory already holds a complete manifest")
	flag.StringVar(&o.filter, "filter", "", "only run cells matching every axis=value pair (comma-separated), e.g. algo=cdpf,loss=0.3")
	flag.BoolVar(&o.list, "list", false, "print the expanded cells and their dispositions without running")
	flag.BoolVar(&o.progress, "progress", false, "print fleet progress (cells done, cells/sec, ETA) to stderr")
	flag.StringVar(&o.benchJSON, "benchjson", "", "write a bench-matrix/v1 throughput baseline to this JSON file")
	flag.StringVar(&o.note, "note", "", "note to embed in the -benchjson baseline")
	flag.Parse()
	if *showVersion {
		fmt.Println("cdpfmatrix", version.String())
		return
	}

	// Ctrl-C / SIGTERM cancels the fleet cleanly: queued cells drain without
	// running and the run returns the context error; completed cell
	// directories stay valid for -resume.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if err := run(ctx, o, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "cdpfmatrix:", err)
		os.Exit(1)
	}
}

// parseFilter turns "axis=value,axis=value" into the RunMatrix filter map.
// Axis-name validity is checked by RunMatrix itself (one validation path).
func parseFilter(s string) (map[string]string, error) {
	if s == "" {
		return nil, nil
	}
	m := make(map[string]string)
	for _, pair := range strings.Split(s, ",") {
		name, value, ok := strings.Cut(pair, "=")
		if !ok || name == "" || value == "" {
			return nil, fmt.Errorf("-filter: %q is not axis=value", pair)
		}
		m[name] = value
	}
	return m, nil
}

func run(ctx context.Context, o options, out io.Writer) error {
	if o.spec == "" {
		return fmt.Errorf("-spec is required")
	}
	if o.parallel < 1 {
		return fmt.Errorf("-parallel must be >= 1, got %d", o.parallel)
	}
	filter, err := parseFilter(o.filter)
	if err != nil {
		return err
	}
	f, err := spec.Load(o.spec)
	if err != nil {
		return err
	}

	if o.list {
		return list(f, filter, o, out)
	}

	var obs fleet.Observer
	if o.progress {
		obs = fleet.NewProgress(os.Stderr, time.Second)
	}
	start := time.Now()
	sum, err := experiments.RunMatrix(f, experiments.MatrixOptions{
		Exec:    experiments.Exec{Workers: o.parallel, Observer: obs, Ctx: ctx},
		OutDir:  o.out,
		Resume:  o.resume,
		Filter:  filter,
		Version: version.String(),
	})
	if err != nil {
		return err
	}
	wall := time.Since(start)

	for _, st := range sum.Statuses {
		switch {
		case st.Filtered:
			fmt.Fprintf(out, "  %-40s filtered\n", st.Name)
		case st.Skipped:
			fmt.Fprintf(out, "  %-40s complete (resume)\n", st.Name)
		default:
			rmse := "-"
			if r := st.Result.RMSE(); r == r { // not NaN
				rmse = fmt.Sprintf("%.3f m", r)
			}
			fmt.Fprintf(out, "  %-40s rmse %-9s %4d ms\n", st.Name, rmse, st.WallMS)
		}
	}
	fmt.Fprintf(out, "cdpfmatrix: spec %s: %d cells, %d matched, %d executed, %d skipped, out %s\n",
		sum.Spec, sum.Total, sum.Matched, sum.Executed, sum.Skipped, o.out)

	// Bench-format block: parseable by cmd/benchdiff. Expansion count is
	// machine-independent (allocs/op gates exactly); cell throughput and
	// wall-clock gate only on matching cpu: hardware.
	if cpu := benchfmt.HostCPU(); cpu != "" {
		fmt.Fprintf(out, "cpu: %s\n", cpu)
	}
	fmt.Fprintf(out, "BenchmarkMatrixExpansion \t1\t%d allocs/op\n", sum.Total)
	meas := map[string]benchfmt.Measurement{
		"BenchmarkMatrixExpansion": {AllocsPerOp: float64(sum.Total)},
	}
	if sum.Executed > 0 {
		perCell := wall.Nanoseconds() / int64(sum.Executed)
		cellsPerSec := float64(sum.Executed) / wall.Seconds()
		fmt.Fprintf(out, "BenchmarkMatrixCells \t%d\t%d ns/op\t%.2f jobs/sec\n",
			sum.Executed, perCell, cellsPerSec)
		fmt.Fprintf(out, "BenchmarkMatrixWall \t1\t%d ns/op\n", wall.Nanoseconds())
		meas["BenchmarkMatrixCells"] = benchfmt.Measurement{
			NsPerOp: float64(perCell), JobsPerSec: cellsPerSec,
		}
		meas["BenchmarkMatrixWall"] = benchfmt.Measurement{NsPerOp: float64(wall.Nanoseconds())}
	}

	if o.benchJSON != "" {
		b := benchfmt.Baseline{
			Schema:   "bench-matrix/v1",
			Recorded: time.Now().Format("2006-01-02"),
			CPU:      benchfmt.HostCPU(),
			Note:     o.note,
			Baseline: meas,
		}
		if err := b.Write(o.benchJSON); err != nil {
			return err
		}
		fmt.Fprintf(out, "cdpfmatrix: baseline written to %s\n", o.benchJSON)
	}
	return nil
}

// list prints the expansion with each cell's disposition (would run,
// filtered out, or already complete under -resume) without executing.
func list(f *spec.File, filter map[string]string, o options, out io.Writer) error {
	cells, err := f.Expand()
	if err != nil {
		return err
	}
	for name := range filter {
		if _, ok := (spec.Axes{}).AxisValue(name); !ok {
			return fmt.Errorf("unknown filter axis %q", name)
		}
	}
	matched := 0
	for _, c := range cells {
		disposition := "run"
		for name, want := range filter {
			if got, _ := c.Axes.AxisValue(name); got != want {
				disposition = "filtered"
				break
			}
		}
		if disposition == "run" {
			matched++
			if o.resume && experiments.CellComplete(o.out, c.Name) {
				disposition = "complete"
			}
		}
		fmt.Fprintf(out, "%-40s %s\n", c.Name, disposition)
	}
	fmt.Fprintf(out, "cdpfmatrix: spec %s: %d cells, %d matched\n", f.Name, len(cells), matched)
	return nil
}
