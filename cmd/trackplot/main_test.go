package main

import (
	"strings"
	"testing"

	"repro/internal/experiments"
)

func TestAsciiPlot(t *testing.T) {
	points, err := experiments.Fig4(10, 31)
	if err != nil {
		t.Fatal(err)
	}
	out := asciiPlot(points)
	if !strings.Contains(out, "truth") {
		t.Fatal("missing legend")
	}
	if !strings.ContainsRune(out, '*') {
		t.Fatal("no truth markers plotted")
	}
	if !strings.ContainsRune(out, 'o') {
		t.Fatal("no CDPF markers plotted")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 25 { // legend + 24 grid rows
		t.Fatalf("plot has %d lines", len(lines))
	}
}
