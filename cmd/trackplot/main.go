// Command trackplot renders the Fig. 4 estimation example as an ASCII plot
// of the field around the trajectory plus the underlying data series, and
// can emit the series as CSV for external plotting.
//
// Usage:
//
//	trackplot [-density D] [-seed S] [-csv FILE]
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strings"

	"repro/internal/experiments"
	"repro/internal/version"
)

func main() {
	var (
		density     = flag.Float64("density", 20, "node density (nodes per 100 m²)")
		seed        = flag.Uint64("seed", 31, "master random seed")
		csvPath     = flag.String("csv", "", "write the series as CSV to this file")
		showVersion = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *showVersion {
		fmt.Println("trackplot", version.String())
		return
	}

	points, err := experiments.Fig4(*density, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "trackplot:", err)
		os.Exit(1)
	}

	fmt.Print(asciiPlot(points))
	fmt.Println()
	tbl := experiments.Fig4Table(points)
	if err := tbl.Render(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "trackplot:", err)
		os.Exit(1)
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "trackplot:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := tbl.WriteCSV(f); err != nil {
			fmt.Fprintln(os.Stderr, "trackplot:", err)
			os.Exit(1)
		}
	}
}

// asciiPlot draws truth (*), CDPF estimates (o) and CDPF-NE estimates (x)
// on a character grid covering the trajectory's bounding box.
func asciiPlot(points []experiments.TrackPoint) string {
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	expand := func(x, y float64) {
		minX, maxX = math.Min(minX, x), math.Max(maxX, x)
		minY, maxY = math.Min(minY, y), math.Max(maxY, y)
	}
	for _, p := range points {
		expand(p.Truth.X, p.Truth.Y)
		if p.HaveC {
			expand(p.CDPF.X, p.CDPF.Y)
		}
		if p.HaveNE {
			expand(p.CDPFNE.X, p.CDPFNE.Y)
		}
	}
	minX -= 2
	maxX += 2
	minY -= 2
	maxY += 2

	const w, h = 100, 24
	grid := make([][]byte, h)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", w))
	}
	put := func(x, y float64, c byte) {
		cx := int((x - minX) / (maxX - minX) * (w - 1))
		cy := int((y - minY) / (maxY - minY) * (h - 1))
		cy = h - 1 - cy // screen y grows downward
		if cx >= 0 && cx < w && cy >= 0 && cy < h {
			if grid[cy][cx] == ' ' || c == '*' {
				grid[cy][cx] = c
			}
		}
	}
	for _, p := range points {
		if p.HaveNE {
			put(p.CDPFNE.X, p.CDPFNE.Y, 'x')
		}
		if p.HaveC {
			put(p.CDPF.X, p.CDPF.Y, 'o')
		}
	}
	for _, p := range points {
		put(p.Truth.X, p.Truth.Y, '*')
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 4 — * truth, o CDPF, x CDPF-NE   [x: %.0f..%.0f m, y: %.0f..%.0f m]\n",
		minX, maxX, minY, maxY)
	for _, row := range grid {
		b.WriteString("|")
		b.Write(row)
		b.WriteString("|\n")
	}
	return b.String()
}
