package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("nope", 1, 20, "", false); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunFig4WithCSV(t *testing.T) {
	dir := t.TempDir()
	if err := run("fig4", 1, 20, dir, false); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig4.csv"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 12 { // header + 11 iterations
		t.Fatalf("fig4.csv has %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "k,truth_x") {
		t.Fatalf("header = %q", lines[0])
	}
}

func TestRunSingleExperiments(t *testing.T) {
	// Cheap single-seed smoke over every single-density experiment.
	for _, exp := range []string{"table1", "duty", "latency", "aggregation", "resampler"} {
		if err := run(exp, 1, 10, "", false); err != nil {
			t.Fatalf("%s: %v", exp, err)
		}
	}
}
