package main

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// opts builds the default test options (single seed, serial).
func opts(exp string, seeds int, density float64, csvDir string) options {
	return options{exp: exp, seeds: seeds, density: density, csvDir: csvDir, parallel: 1}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run(context.Background(), opts("nope", 1, 20, "")); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunRejectsNonPositiveParallel(t *testing.T) {
	o := opts("fig4", 1, 20, "")
	o.parallel = -3
	if err := run(context.Background(), o); err == nil || !strings.Contains(err.Error(), "-parallel") {
		t.Fatalf("err = %v, want -parallel validation error", err)
	}
}

func TestRunRejectsInvalidFlags(t *testing.T) {
	cases := []struct {
		name string
		o    options
		want string
	}{
		{"zero seeds", opts("fig4", 0, 20, ""), "-seeds"},
		{"negative seeds", opts("fig4", -2, 20, ""), "-seeds"},
		{"zero density", opts("fig4", 1, 0, ""), "-density"},
		{"negative density", opts("fig4", 1, -5, ""), "-density"},
	}
	for _, c := range cases {
		err := run(context.Background(), c.o)
		if err == nil {
			t.Fatalf("%s: accepted", c.name)
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Fatalf("%s: error %q does not name %s", c.name, err, c.want)
		}
		if strings.Contains(err.Error(), "\n") {
			t.Fatalf("%s: error %q is not one line", c.name, err)
		}
	}
}

func TestRunSensorFaultWritesCSVs(t *testing.T) {
	dir := t.TempDir()
	if err := run(context.Background(), opts("sensorfault", 1, 10, dir)); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"sensorfault_rmse.csv", "sensorfault_coverage.csv", "sensorfault_quarantine.csv"} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		if len(strings.Split(strings.TrimSpace(string(data)), "\n")) < 2 {
			t.Fatalf("%s has no data rows:\n%s", name, data)
		}
	}
}

func TestRunFig4WithCSV(t *testing.T) {
	dir := t.TempDir()
	if err := run(context.Background(), opts("fig4", 1, 20, dir)); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig4.csv"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 12 { // header + 11 iterations
		t.Fatalf("fig4.csv has %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "k,truth_x") {
		t.Fatalf("header = %q", lines[0])
	}
}

func TestRunCancelledContext(t *testing.T) {
	// A pre-cancelled context (the moral equivalent of Ctrl-C before the
	// sweep starts) must abort the fleet and surface the context error
	// instead of running the cells.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	o := opts("table1", 2, 10, "")
	o.parallel = 4
	err := run(ctx, o)
	if err == nil || !strings.Contains(err.Error(), context.Canceled.Error()) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRunSingleExperiments(t *testing.T) {
	// Cheap single-seed smoke over every single-density experiment.
	for _, exp := range []string{"table1", "duty", "latency", "aggregation", "resampler"} {
		if err := run(context.Background(), opts(exp, 1, 10, "")); err != nil {
			t.Fatalf("%s: %v", exp, err)
		}
	}
}

func TestRunParallelMatchesSerialCSV(t *testing.T) {
	// The determinism contract at the CLI layer: the CSV a parallel run
	// writes must be byte-identical to the serial run's.
	render := func(parallel int) []byte {
		dir := t.TempDir()
		o := opts("table1", 2, 10, dir)
		o.parallel = parallel
		if err := run(context.Background(), o); err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		data, err := os.ReadFile(filepath.Join(dir, "table1_validation.csv"))
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	serial := render(1)
	if par := render(4); string(par) != string(serial) {
		t.Fatalf("parallel CSV diverged from serial:\n%s\nvs\n%s", serial, par)
	}
}

func TestRunWritesBenchJSON(t *testing.T) {
	dir := t.TempDir()
	o := opts("table1", 1, 10, "")
	o.parallel = 4
	o.benchJSON = filepath.Join(dir, "sub", "BENCH_fleet.json")
	if err := run(context.Background(), o); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(o.benchJSON)
	if err != nil {
		t.Fatal(err)
	}
	var recs []benchRecord
	if err := json.Unmarshal(data, &recs); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, data)
	}
	if len(recs) != 1 {
		t.Fatalf("records = %d", len(recs))
	}
	rec := recs[0]
	if rec.Experiment != "table1" || rec.Workers != 4 {
		t.Fatalf("record = %+v", rec)
	}
	// table1 submits probe cells plus one run per (algorithm, seed).
	if rec.Jobs < 8 {
		t.Fatalf("jobs = %d, want >= 8", rec.Jobs)
	}
	if rec.WallClockMS <= 0 || rec.JobsPerSec <= 0 {
		t.Fatalf("throughput not recorded: %+v", rec)
	}

	// A second invocation must append, not overwrite.
	o.parallel = 1
	if err := run(context.Background(), o); err != nil {
		t.Fatal(err)
	}
	data, err = os.ReadFile(o.benchJSON)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &recs); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[1].Workers != 1 {
		t.Fatalf("append failed: %+v", recs)
	}
}
