// Command benchtab regenerates every table and figure of the paper's
// evaluation section (Table I, Figs. 4–6) plus the extension studies, as
// aligned text tables on stdout and optional CSV files.
//
// Usage:
//
//	benchtab [-exp all|table1|fig4|fig5|fig6|failure|sleep|duty|ablation|latency|resilience]
//	         [-seeds N] [-density D] [-csv DIR]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/report"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment to run: all, table1, fig4, fig5, fig6, failure, sleep, loss, duty, ablation, multitarget, mobility, radius, resampler, aggregation, latency, resilience")
		seeds   = flag.Int("seeds", 10, "number of random seeds per configuration (paper: 10)")
		density = flag.Float64("density", 20, "node density (nodes per 100 m²) for single-density experiments")
		csvDir  = flag.String("csv", "", "also write each table as CSV into this directory")
		chart   = flag.Bool("chart", false, "render Fig. 5/6 sweeps as ASCII charts too")
	)
	flag.Parse()

	if err := run(*exp, *seeds, *density, *csvDir, *chart); err != nil {
		fmt.Fprintln(os.Stderr, "benchtab:", err)
		os.Exit(1)
	}
}

func run(exp string, seeds int, density float64, csvDir string, chart bool) error {
	emit := func(name string, t *report.Table) error {
		if err := t.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
		if csvDir == "" {
			return nil
		}
		if err := os.MkdirAll(csvDir, 0o755); err != nil {
			return err
		}
		f, err := os.Create(filepath.Join(csvDir, name+".csv"))
		if err != nil {
			return err
		}
		defer f.Close()
		return t.WriteCSV(f)
	}

	seedList := experiments.Seeds(seeds)

	wantsSweep := exp == "all" || exp == "fig5" || exp == "fig6"
	var aggs []metrics.Aggregate
	if wantsSweep {
		results, err := experiments.Sweep(experiments.PaperDensities(), seedList, experiments.AllAlgos())
		if err != nil {
			return err
		}
		aggs = metrics.Summarize(results)
	}

	if exp == "all" || exp == "table1" {
		t, _, err := experiments.Table1(density, seedList[0])
		if err != nil {
			return err
		}
		if err := emit("table1", t); err != nil {
			return err
		}
		tv, err := experiments.Table1Empirical(density, seedList)
		if err != nil {
			return err
		}
		if err := emit("table1_validation", tv); err != nil {
			return err
		}
	}
	if exp == "all" || exp == "fig4" {
		points, err := experiments.Fig4(density, seedList[0])
		if err != nil {
			return err
		}
		if err := emit("fig4", experiments.Fig4Table(points)); err != nil {
			return err
		}
	}
	if exp == "all" || exp == "fig5" {
		if err := emit("fig5", experiments.Fig5Table(aggs)); err != nil {
			return err
		}
		if chart {
			fmt.Println(experiments.Fig5Chart(aggs))
		}
	}
	if exp == "all" || exp == "fig6" {
		if err := emit("fig6", experiments.Fig6Table(aggs)); err != nil {
			return err
		}
		if chart {
			fmt.Println(experiments.Fig6Chart(aggs))
		}
	}
	if wantsSweep {
		h := experiments.Headlines(aggs)
		fmt.Printf("Headlines (density-averaged): CDPF cost vs SDPF: -%.0f%%, vs CPF: %+.0f%%; "+
			"error vs SDPF: CDPF %+.0f%%, CDPF-NE %+.0f%%\n\n",
			h.CostReductionVsSDPF, -h.CostReductionVsCPF, h.ErrIncreaseCDPF, h.ErrIncreaseNE)
	}
	if exp == "all" || exp == "failure" {
		results, err := experiments.FailureSweep(density, []float64{0, 0.1, 0.2, 0.3, 0.4}, seedList)
		if err != nil {
			return err
		}
		if err := emit("failure", experiments.FailureTable(metrics.Summarize(results))); err != nil {
			return err
		}
	}
	if exp == "all" || exp == "sleep" {
		results, err := experiments.SleepSweep(density, []float64{0, 0.1, 0.2, 0.3, 0.4}, seedList)
		if err != nil {
			return err
		}
		t := experiments.FailureTable(metrics.Summarize(results))
		t.Title = "Extension — RMSE vs unanticipated random sleeping (density 20)"
		t.Headers[0] = "sleep %"
		if err := emit("sleep", t); err != nil {
			return err
		}
	}
	if exp == "all" || exp == "loss" {
		results, err := experiments.LossSweep(density, []float64{0, 0.1, 0.2, 0.3, 0.5}, seedList)
		if err != nil {
			return err
		}
		if err := emit("loss", experiments.LossTable(metrics.Summarize(results))); err != nil {
			return err
		}
	}
	if exp == "all" || exp == "duty" {
		results, err := experiments.DutyCycleEnergy(density, seedList[0], 0.2)
		if err != nil {
			return err
		}
		if err := emit("duty", experiments.DutyCycleTable(results)); err != nil {
			return err
		}
	}
	if exp == "all" || exp == "ablation" {
		results, err := experiments.DesignAblation(density, seedList)
		if err != nil {
			return err
		}
		if err := emit("ablation", experiments.AblationTable(results)); err != nil {
			return err
		}
	}
	if exp == "all" || exp == "multitarget" {
		t, err := experiments.MultiTargetExperiment(density, []int{1, 2, 3}, seedList)
		if err != nil {
			return err
		}
		if err := emit("multitarget", t); err != nil {
			return err
		}
	}
	if exp == "all" || exp == "mobility" {
		results, err := experiments.MobilitySweep(density, []float64{0, 0.5, 1, 2, 4}, seedList)
		if err != nil {
			return err
		}
		if err := emit("mobility", experiments.MobilityTable(metrics.Summarize(results))); err != nil {
			return err
		}
	}
	if exp == "all" || exp == "radius" {
		t, err := experiments.RadiusRatioSweep(density, []float64{20, 25, 30, 40, 60}, seedList)
		if err != nil {
			return err
		}
		if err := emit("radius", t); err != nil {
			return err
		}
	}
	if exp == "all" || exp == "resampler" {
		t, err := experiments.ResamplerAblation(seedList)
		if err != nil {
			return err
		}
		if err := emit("resampler", t); err != nil {
			return err
		}
	}
	if exp == "all" || exp == "aggregation" {
		t, err := experiments.AggregationComparison(density, seedList[0])
		if err != nil {
			return err
		}
		if err := emit("aggregation", t); err != nil {
			return err
		}
	}
	if exp == "all" || exp == "latency" {
		t, err := experiments.LatencyComparison(density, seedList[0])
		if err != nil {
			return err
		}
		if err := emit("latency", t); err != nil {
			return err
		}
	}
	if exp == "all" || exp == "resilience" {
		results, err := experiments.ResilienceLossSweep(density, experiments.ResilienceLossRates(),
			experiments.ResilienceFailFrac, experiments.ResilienceBurstLen, seedList)
		if err != nil {
			return err
		}
		lossAggs := metrics.Summarize(results)
		rmse, cov, reacq := experiments.ResilienceTables(lossAggs, "loss %")
		named := []struct {
			name string
			t    *report.Table
		}{
			{"resilience_rmse", rmse},
			{"resilience_coverage", cov},
			{"resilience_reacq", reacq},
			{"resilience_locked", experiments.ResilienceLockTable(lossAggs, "loss %")},
		}
		for _, nt := range named {
			if err := emit(nt.name, nt.t); err != nil {
				return err
			}
		}
		for _, h := range experiments.ResilienceHeadlines(lossAggs) {
			fmt.Printf("Resilience headline %s: worst-corner RMSE x%.2f of clean, coverage %.0f%% at worst\n",
				h.Algo, h.RMSEInflation, 100*h.CoverageAtWorst)
		}
		fmt.Println()
		if chart {
			fmt.Println(experiments.ResilienceChart(lossAggs, "loss %"))
		}
		failResults, err := experiments.ResilienceFailSweep(density, experiments.ResilienceFailFracs(),
			experiments.ResilienceLossRate, experiments.ResilienceBurstLen, seedList)
		if err != nil {
			return err
		}
		failRMSE, failCov, failReacq := experiments.ResilienceTables(metrics.Summarize(failResults), "fail %")
		failNamed := []struct {
			name string
			t    *report.Table
		}{
			{"resilience_fail_rmse", failRMSE},
			{"resilience_fail_coverage", failCov},
			{"resilience_fail_reacq", failReacq},
		}
		for _, nt := range failNamed {
			if err := emit(nt.name, nt.t); err != nil {
				return err
			}
		}
	}
	switch exp {
	case "all", "table1", "fig4", "fig5", "fig6", "failure", "sleep", "loss", "duty",
		"ablation", "multitarget", "mobility", "radius", "resampler", "aggregation", "latency",
		"resilience":
		return nil
	}
	return fmt.Errorf("unknown experiment %q", exp)
}
