// Command benchtab regenerates every table and figure of the paper's
// evaluation section (Table I, Figs. 4–6) plus the extension studies, as
// aligned text tables on stdout and optional CSV files.
//
// The sweep cells (density × seed × algorithm grid points) execute on the
// internal/fleet runtime: -parallel N fans them out over N workers with
// bit-identical output at any worker count; -parallel 1 runs the legacy
// serial path.
//
// Usage:
//
//	benchtab [-exp all|table1|fig4|fig5|fig6|failure|sleep|duty|ablation|latency|resilience|sensorfault|kernels]
//	         [-seeds N] [-density D] [-csv DIR]
//	         [-parallel N] [-progress] [-benchjson FILE]
//	         [-cpuprofile FILE] [-memprofile FILE] [-trace FILE]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/experiments"
	"repro/internal/fleet"
	"repro/internal/metrics"
	"repro/internal/prof"
	"repro/internal/report"
	"repro/internal/spec"
	"repro/internal/version"
)

func main() {
	var o options
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.StringVar(&o.exp, "exp", "all", "experiment to run: all, table1, fig4, fig5, fig6, failure, sleep, loss, duty, ablation, multitarget, mobility, radius, resampler, aggregation, latency, resilience, sensorfault, kernels (hot-path profiling loop, not part of all)")
	flag.IntVar(&o.seeds, "seeds", 10, "number of random seeds per configuration (paper: 10)")
	flag.Float64Var(&o.density, "density", 20, "node density (nodes per 100 m²) for single-density experiments")
	flag.StringVar(&o.csvDir, "csv", "", "also write each table as CSV into this directory")
	flag.BoolVar(&o.chart, "chart", false, "render Fig. 5/6 sweeps as ASCII charts too")
	flag.IntVar(&o.parallel, "parallel", runtime.GOMAXPROCS(0), "fleet workers for sweep cells (1 = legacy serial path)")
	flag.BoolVar(&o.progress, "progress", false, "print fleet progress (jobs done, jobs/sec, ETA) to stderr")
	flag.StringVar(&o.benchJSON, "benchjson", "", "write a machine-readable throughput record (workers, jobs/sec, wall-clock) to this JSON file")
	flag.StringVar(&o.prof.CPUProfile, "cpuprofile", "", "write a pprof CPU profile of the run to this file")
	flag.StringVar(&o.prof.MemProfile, "memprofile", "", "write a pprof heap profile at exit to this file")
	flag.StringVar(&o.prof.Trace, "trace", "", "write a runtime execution trace of the run to this file")
	flag.Parse()
	if *showVersion {
		fmt.Println("benchtab", version.String())
		return
	}

	// Ctrl-C / SIGTERM cancels the fleet cleanly: queued sweep cells drain
	// without running and the run returns the context error.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	stopProf, err := prof.Start(o.prof)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchtab:", err)
		os.Exit(1)
	}
	runErr := run(ctx, o)
	if err := stopProf(); err != nil && runErr == nil {
		runErr = err
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "benchtab:", runErr)
		os.Exit(1)
	}
}

// options carries the parsed command line.
type options struct {
	exp       string
	seeds     int
	density   float64
	csvDir    string
	chart     bool
	parallel  int
	progress  bool
	benchJSON string
	prof      prof.Flags
}

// jobCounter counts fleet job completions (for the -benchjson record) and
// forwards snapshots to an optional inner observer.
type jobCounter struct {
	n     int64
	inner fleet.Observer
}

// JobDone implements fleet.Observer.
func (c *jobCounter) JobDone(s fleet.Snapshot) {
	atomic.AddInt64(&c.n, 1)
	if c.inner != nil {
		c.inner.JobDone(s)
	}
}

// benchRecord is the schema of one -benchjson entry. The output file is a
// JSON array that each invocation appends to, so the performance trajectory
// of the suite gets recorded across runs.
type benchRecord struct {
	Experiment  string  `json:"experiment"`
	Workers     int     `json:"workers"`
	GOMAXPROCS  int     `json:"gomaxprocs"`
	NumCPU      int     `json:"numcpu"`
	Seeds       int     `json:"seeds"`
	Jobs        int64   `json:"jobs"`
	WallClockMS float64 `json:"wall_clock_ms"`
	JobsPerSec  float64 `json:"jobs_per_sec"`
}

func run(ctx context.Context, o options) error {
	if o.parallel < 1 {
		return fmt.Errorf("-parallel must be >= 1, got %d", o.parallel)
	}
	if o.seeds < 1 {
		return fmt.Errorf("-seeds must be >= 1, got %d", o.seeds)
	}
	// Scenario-level validation goes through the spec axes — the same single
	// path cdpfsim, cdpfmatrix, and cdpfd admission use. Zero is guarded
	// separately because a spec cell treats 0 as "unset, use the default"
	// while an explicit -density 0 is an error.
	if o.density == 0 {
		return fmt.Errorf("-density must be positive, got 0")
	}
	if err := (spec.Axes{Density: o.density}).Validate(); err != nil {
		return fmt.Errorf("-density: %w", err)
	}
	counter := &jobCounter{}
	if o.progress {
		counter.inner = fleet.NewProgress(os.Stderr, time.Second)
	}
	exec := experiments.Exec{Workers: o.parallel, Observer: counter, Ctx: ctx}
	start := time.Now()

	if err := runExperiments(o, exec); err != nil {
		return err
	}

	if o.benchJSON != "" {
		elapsed := time.Since(start)
		jobs := atomic.LoadInt64(&counter.n)
		rec := benchRecord{
			Experiment:  o.exp,
			Workers:     o.parallel,
			GOMAXPROCS:  runtime.GOMAXPROCS(0),
			NumCPU:      runtime.NumCPU(),
			Seeds:       o.seeds,
			Jobs:        jobs,
			WallClockMS: float64(elapsed.Microseconds()) / 1000,
			JobsPerSec:  float64(jobs) / elapsed.Seconds(),
		}
		if err := writeBenchJSON(o.benchJSON, rec); err != nil {
			return err
		}
	}
	return nil
}

// writeBenchJSON appends the throughput record to the JSON array at path
// (creating the file if absent), preserving earlier records so the file
// accumulates the suite's performance trajectory.
func writeBenchJSON(path string, rec benchRecord) error {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	var records []benchRecord
	if prev, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(prev, &records); err != nil {
			return fmt.Errorf("benchjson %s exists but is not a record array: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	records = append(records, rec)
	data, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func runExperiments(o options, exec experiments.Exec) error {
	emit := func(name string, t *report.Table) error {
		if err := t.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
		if o.csvDir == "" {
			return nil
		}
		if err := os.MkdirAll(o.csvDir, 0o755); err != nil {
			return err
		}
		// Write-then-rename so an interrupted run never leaves a truncated
		// CSV behind under the published name.
		final := filepath.Join(o.csvDir, name+".csv")
		tmp := final + ".tmp"
		f, err := os.Create(tmp)
		if err != nil {
			return err
		}
		if err := t.WriteCSV(f); err != nil {
			f.Close()
			os.Remove(tmp)
			return err
		}
		if err := f.Close(); err != nil {
			os.Remove(tmp)
			return err
		}
		return os.Rename(tmp, final)
	}

	exp, density, chart := o.exp, o.density, o.chart
	seedList := experiments.Seeds(o.seeds)

	// The kernel hot-path loop is a profiling harness, not a paper table:
	// it runs only when asked for, never under "all".
	if exp == "kernels" {
		return runKernels(o, emit)
	}

	wantsSweep := exp == "all" || exp == "fig5" || exp == "fig6"
	var aggs []metrics.Aggregate
	if wantsSweep {
		results, err := exec.Sweep(experiments.PaperDensities(), seedList, experiments.AllAlgos())
		if err != nil {
			return err
		}
		aggs = metrics.Summarize(results)
	}

	if exp == "all" || exp == "table1" {
		t, _, err := experiments.Table1(density, seedList[0])
		if err != nil {
			return err
		}
		if err := emit("table1", t); err != nil {
			return err
		}
		tv, err := exec.Table1Empirical(density, seedList)
		if err != nil {
			return err
		}
		if err := emit("table1_validation", tv); err != nil {
			return err
		}
	}
	if exp == "all" || exp == "fig4" {
		points, err := experiments.Fig4(density, seedList[0])
		if err != nil {
			return err
		}
		if err := emit("fig4", experiments.Fig4Table(points)); err != nil {
			return err
		}
	}
	if exp == "all" || exp == "fig5" {
		if err := emit("fig5", experiments.Fig5Table(aggs)); err != nil {
			return err
		}
		if chart {
			fmt.Println(experiments.Fig5Chart(aggs))
		}
	}
	if exp == "all" || exp == "fig6" {
		if err := emit("fig6", experiments.Fig6Table(aggs)); err != nil {
			return err
		}
		if chart {
			fmt.Println(experiments.Fig6Chart(aggs))
		}
	}
	if wantsSweep {
		h := experiments.Headlines(aggs)
		fmt.Printf("Headlines (density-averaged): CDPF cost vs SDPF: -%.0f%%, vs CPF: %+.0f%%; "+
			"error vs SDPF: CDPF %+.0f%%, CDPF-NE %+.0f%%\n\n",
			h.CostReductionVsSDPF, -h.CostReductionVsCPF, h.ErrIncreaseCDPF, h.ErrIncreaseNE)
	}
	if exp == "all" || exp == "failure" {
		results, err := experiments.FailureSweep(density, []float64{0, 0.1, 0.2, 0.3, 0.4}, seedList)
		if err != nil {
			return err
		}
		if err := emit("failure", experiments.FailureTable(metrics.Summarize(results))); err != nil {
			return err
		}
	}
	if exp == "all" || exp == "sleep" {
		results, err := experiments.SleepSweep(density, []float64{0, 0.1, 0.2, 0.3, 0.4}, seedList)
		if err != nil {
			return err
		}
		t := experiments.FailureTable(metrics.Summarize(results))
		t.Title = "Extension — RMSE vs unanticipated random sleeping (density 20)"
		t.Headers[0] = "sleep %"
		if err := emit("sleep", t); err != nil {
			return err
		}
	}
	if exp == "all" || exp == "loss" {
		results, err := experiments.LossSweep(density, []float64{0, 0.1, 0.2, 0.3, 0.5}, seedList)
		if err != nil {
			return err
		}
		if err := emit("loss", experiments.LossTable(metrics.Summarize(results))); err != nil {
			return err
		}
	}
	if exp == "all" || exp == "duty" {
		results, err := experiments.DutyCycleEnergy(density, seedList[0], 0.2)
		if err != nil {
			return err
		}
		if err := emit("duty", experiments.DutyCycleTable(results)); err != nil {
			return err
		}
	}
	if exp == "all" || exp == "ablation" {
		results, err := experiments.DesignAblation(density, seedList)
		if err != nil {
			return err
		}
		if err := emit("ablation", experiments.AblationTable(results)); err != nil {
			return err
		}
	}
	if exp == "all" || exp == "multitarget" {
		t, err := exec.MultiTargetExperiment(density, []int{1, 2, 3}, seedList)
		if err != nil {
			return err
		}
		if err := emit("multitarget", t); err != nil {
			return err
		}
	}
	if exp == "all" || exp == "mobility" {
		results, err := experiments.MobilitySweep(density, []float64{0, 0.5, 1, 2, 4}, seedList)
		if err != nil {
			return err
		}
		if err := emit("mobility", experiments.MobilityTable(metrics.Summarize(results))); err != nil {
			return err
		}
	}
	if exp == "all" || exp == "radius" {
		t, err := experiments.RadiusRatioSweep(density, []float64{20, 25, 30, 40, 60}, seedList)
		if err != nil {
			return err
		}
		if err := emit("radius", t); err != nil {
			return err
		}
	}
	if exp == "all" || exp == "resampler" {
		t, err := experiments.ResamplerAblation(seedList)
		if err != nil {
			return err
		}
		if err := emit("resampler", t); err != nil {
			return err
		}
	}
	if exp == "all" || exp == "aggregation" {
		t, err := experiments.AggregationComparison(density, seedList[0])
		if err != nil {
			return err
		}
		if err := emit("aggregation", t); err != nil {
			return err
		}
	}
	if exp == "all" || exp == "latency" {
		t, err := experiments.LatencyComparison(density, seedList[0])
		if err != nil {
			return err
		}
		if err := emit("latency", t); err != nil {
			return err
		}
	}
	if exp == "all" || exp == "resilience" {
		results, err := exec.ResilienceLossSweep(density, experiments.ResilienceLossRates(),
			experiments.ResilienceFailFrac, experiments.ResilienceBurstLen, seedList)
		if err != nil {
			return err
		}
		lossAggs := metrics.Summarize(results)
		rmse, cov, reacq := experiments.ResilienceTables(lossAggs, "loss %")
		named := []struct {
			name string
			t    *report.Table
		}{
			{"resilience_rmse", rmse},
			{"resilience_coverage", cov},
			{"resilience_reacq", reacq},
			{"resilience_locked", experiments.ResilienceLockTable(lossAggs, "loss %")},
		}
		for _, nt := range named {
			if err := emit(nt.name, nt.t); err != nil {
				return err
			}
		}
		for _, h := range experiments.ResilienceHeadlines(lossAggs) {
			fmt.Printf("Resilience headline %s: worst-corner RMSE x%.2f of clean, coverage %.0f%% at worst\n",
				h.Algo, h.RMSEInflation, 100*h.CoverageAtWorst)
		}
		fmt.Println()
		if chart {
			fmt.Println(experiments.ResilienceChart(lossAggs, "loss %"))
		}
		failResults, err := exec.ResilienceFailSweep(density, experiments.ResilienceFailFracs(),
			experiments.ResilienceLossRate, experiments.ResilienceBurstLen, seedList)
		if err != nil {
			return err
		}
		failRMSE, failCov, failReacq := experiments.ResilienceTables(metrics.Summarize(failResults), "fail %")
		failNamed := []struct {
			name string
			t    *report.Table
		}{
			{"resilience_fail_rmse", failRMSE},
			{"resilience_fail_coverage", failCov},
			{"resilience_fail_reacq", failReacq},
		}
		for _, nt := range failNamed {
			if err := emit(nt.name, nt.t); err != nil {
				return err
			}
		}
	}
	if exp == "all" || exp == "sensorfault" {
		results, err := exec.SensorFaultSweep(density, experiments.SensorFaultKinds(),
			experiments.SensorFaultFracs(), seedList)
		if err != nil {
			return err
		}
		sfAggs := metrics.Summarize(results)
		rmse, cov := experiments.SensorFaultTables(sfAggs)
		named := []struct {
			name string
			t    *report.Table
		}{
			{"sensorfault_rmse", rmse},
			{"sensorfault_coverage", cov},
			{"sensorfault_quarantine", experiments.SensorFaultQuarantineTable(sfAggs)},
		}
		for _, nt := range named {
			if err := emit(nt.name, nt.t); err != nil {
				return err
			}
		}
		for _, h := range experiments.SensorFaultHeadlines(sfAggs) {
			fmt.Printf("Sensor-fault headline %s @ %.0f%% faulty: clean RMSE %.2f m, undefended %.2f m, defended %.2f m\n",
				h.Kind, h.FaultyPct, h.CleanRMSE, h.UndefendedRMSE, h.DefendedRMSE)
		}
		fmt.Println()
	}
	switch exp {
	case "all", "table1", "fig4", "fig5", "fig6", "failure", "sleep", "loss", "duty",
		"ablation", "multitarget", "mobility", "radius", "resampler", "aggregation", "latency",
		"resilience", "sensorfault":
		return nil
	}
	return fmt.Errorf("unknown experiment %q", exp)
}
