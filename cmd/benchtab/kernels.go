package main

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/kernel"
	"repro/internal/mathx"
	"repro/internal/report"
	"repro/internal/scenario"
)

// runKernels is the `-exp kernels` hot-path loop: a fixed repetition count of
// each batch kernel (DESIGN.md §16) plus the warmed full tracker step, timed
// wall-clock and reported as ns/op. Unlike `go test -bench`, the whole loop
// runs inside benchtab's process-wide profiler window, so
//
//	benchtab -exp kernels -cpuprofile cpu.out
//	go tool pprof -top cpu.out
//
// attributes every sample to the kernel under study — the profiling workflow
// EXPERIMENTS.md documents for hot-path regressions.
func runKernels(o options, emit func(string, *report.Table) error) error {
	const cols = 64
	rng := mathx.NewRNG(5)
	fx := make([]float64, cols)
	fy := make([]float64, cols)
	z := make([]float64, cols)
	dist := make([]float64, cols)
	mask := make([]bool, cols)
	ids := make([]int32, cols)
	for i := 0; i < cols; i++ {
		fx[i] = rng.Uniform(0, 120)
		fy[i] = rng.Uniform(0, 120)
		z[i] = rng.Uniform(-3, 3)
		dist[i] = rng.Uniform(0, 40)
		mask[i] = rng.Float64() < 0.7
		ids[i] = int32(i)
	}
	const particles = 1024
	px := make([]float64, particles)
	py := make([]float64, particles)
	vx := make([]float64, particles)
	vy := make([]float64, particles)
	nx := make([]float64, particles)
	ny := make([]float64, particles)
	for i := 0; i < particles; i++ {
		px[i], py[i] = rng.Uniform(0, 120), rng.Uniform(0, 120)
		vx[i], vy[i] = rng.Uniform(-2, 2), rng.Uniform(-2, 2)
		nx[i], ny[i] = rng.Normal(0, 0.1), rng.Normal(0, 0.1)
	}
	gauss := kernel.NewBearing(0.05, 0, 0, 0)
	student := kernel.NewBearing(0.05, 4, 2.0, 2.5)

	var sink float64
	t := report.NewTable(
		fmt.Sprintf("Hot-path kernels (%d bearing columns, %d CV particles)", cols, particles),
		"kernel", "reps", "ns/op")
	bench := func(name string, reps int, fn func()) {
		start := time.Now()
		for i := 0; i < reps; i++ {
			fn()
		}
		t.AddRow(name, reps, fmt.Sprintf("%.1f", float64(time.Since(start).Nanoseconds())/float64(reps)))
	}
	bench("masked_sum/gauss", 200000, func() {
		ll, _, _ := gauss.MaskedSum(fx, fy, z, dist, mask, 60, 60)
		sink += ll
	})
	bench("masked_sum/student_t_quant_gate", 100000, func() {
		ll, _, _ := student.MaskedSum(fx, fy, z, dist, mask, 60, 60)
		sink += ll
	})
	bench("overheard_sum", 500000, func() {
		sink += kernel.OverheardSum(fx, fy, z, ids, -1, 60, 60, 40)
	})
	bench("propagate_cv/drift", 100000, func() {
		kernel.PropagateCV(px, py, vx, vy, 5)
	})
	bench("propagate_cv/noise", 100000, func() {
		kernel.PropagateCVNoise(px, py, vx, vy, nx, ny, 5)
	})

	// The warmed end-to-end step, the quantity the kernels exist to serve:
	// scenario build and scratch growth happen before timing starts.
	sc, err := scenario.Build(scenario.Default(o.density, experiments.Seeds(1)[0]))
	if err != nil {
		return err
	}
	tr, err := core.NewTracker(sc.Net, core.DefaultConfig(false))
	if err != nil {
		return err
	}
	trng := sc.RNG(1)
	obs := make([][]core.Observation, sc.Iterations())
	for k := range obs {
		obs[k] = sc.Observations(k)
	}
	for k := range obs {
		tr.Step(obs[k], trng)
	}
	const stepReps = 2000
	bench("tracker_step/warmed", stepReps, func() {
		tr.Step(obs[0], trng)
	})
	_ = sink
	return emit("kernels", t)
}
