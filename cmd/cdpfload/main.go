// Command cdpfload is the load generator for cdpfd: it drives N concurrent
// tracking sessions against a running daemon, feeding each one the exact
// measurement stream its offline twin would consume (serve.Observations) and
// reading the estimates back over SSE. Each session verifies the served
// records against a local offline run (-verify, on by default), so a load
// run is also an end-to-end determinism check. Scenario builds and the
// offline-twin verification happen outside the timed window — the wall clock
// covers only the driven load, not the generator's own recomputation.
//
// Per-step latency is measured from batch admission (POST accepted) to the
// estimate event arriving, summarised as p50/p90/p99/max plus steps/sec, and
// emitted in `go test -bench` text form so cmd/benchdiff can gate it. All
// currently-ready iterations of a session (bounded by -window) are grouped
// into one ingest POST, so a wide window amortises the HTTP round-trip the
// way the server's shard drain amortises queue bookkeeping. -benchjson
// additionally writes a benchdiff baseline file (results/BENCH_serve.json in
// CI).
//
// With -daemon "CMD ARGS...", cdpfload manages the daemon itself: it appends
// -addr 127.0.0.1:0 -addr-file and waits for /healthz to report "ready".
// -restart-after N then SIGKILLs and restarts the managed daemon after N
// estimate events have been observed, mid-load: sessions ride out the crash
// (postBatches already retries 503s, the drive loop resumes from the server's
// recovered NextK) and every record that spans the restart is still verified
// byte-for-byte against the offline twin — an end-to-end crash-recovery
// check under concurrent load.
//
// With -cluster N (plus -daemon and -gateway "CMD ARGS..."), cdpfload spawns
// N cdpfd backends and a cdpfgw gateway in front of them, and drives every
// session through the gateway. -drain-after K evacuates and SIGTERMs the
// busiest backend after K estimate events: its sessions live-migrate to
// other backends via snapshot handoff, the drained process must exit 0, and
// every migrated session's trace must still match its offline twin. The
// summary adds per-backend latency breakdowns, and -benchjson writes the
// bench-cluster/v1 baseline (results/BENCH_cluster.json in CI).
//
// -kill-after K is the harsher cluster drill: after K estimate events the
// busiest backend is SIGKILLed — no drain, no evacuation — and relaunched on
// its own data directory at the same address. The gateway parks requests for
// the dead backend's sessions through the crash-recovery window, WAL replay
// brings the sessions back, and the run fails if any session the victim was
// serving saw a single client-visible 5xx, or if any trace diverges from its
// offline twin. The summary adds recovery time, the gateway's park-latency
// p99 and retry totals as bench lines, and -benchjson switches to the
// bench-chaos/v1 schema (results/BENCH_chaos.json in CI).
//
// -chaos SCHEDULE additionally interposes a deterministic fault-injecting
// TCP proxy (internal/chaos) between the gateway and every backend; backend
// i's proxy is seeded -chaos-seed + i, so a run's fault log is reproducible.
//
// With -spec FILE[#CELL], every session is configured from one declarative
// spec/v1 cell (the same files cdpfsim -spec and cdpfmatrix run) instead of
// the -density/-use-ne/-steps flags; per-session seeds still derive from
// -seed, overriding the cell's seed axis, and offline-twin verification
// covers the cell's full composition (loss, fail-stops, sensor faults,
// defenses).
//
// Usage:
//
//	cdpfload [-addr HOST:PORT] [-sessions N] [-steps N] [-density D]
//	         [-seed S] [-window W] [-use-ne] [-spec FILE[#CELL]] [-verify=false]
//	         [-daemon "CMD ARGS..."] [-restart-after N]
//	         [-cluster N] [-gateway "CMD ARGS..."] [-drain-after N]
//	         [-kill-after N] [-chaos SCHEDULE] [-chaos-seed S]
//	         [-benchjson FILE] [-note TEXT] [-version]
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/benchfmt"
	"repro/internal/fleet"
	"repro/internal/scenario"
	"repro/internal/serve"
	cellspec "repro/internal/spec"
	"repro/internal/trace"
	"repro/internal/version"
)

type options struct {
	addr         string
	sessions     int
	steps        int
	density      float64
	seed         uint64
	window       int
	useNE        bool
	spec         string
	cellAxes     *cellspec.Axes // resolved from -spec; per-session seeds override Seed
	verify       bool
	benchJSON    string
	note         string
	stepWait     time.Duration
	daemon       string
	restartAfter int
	cluster      int
	gatewayCmd   string
	drainAfter   int
	killAfter    int
	chaos        string
	chaosSeed    uint64
}

func main() {
	var (
		o           options
		seed        = flag.Uint64("seed", 1, "root seed; per-session seeds derive from it (fleet.Seeds)")
		showVersion = flag.Bool("version", false, "print version and exit")
	)
	flag.StringVar(&o.addr, "addr", "127.0.0.1:8723", "cdpfd address (host:port or http:// URL)")
	flag.IntVar(&o.sessions, "sessions", 8, "concurrent tracking sessions")
	flag.IntVar(&o.steps, "steps", 10, "filter iterations per session (scenario Steps)")
	flag.Float64Var(&o.density, "density", 10, "node density (nodes per 100 m^2)")
	flag.IntVar(&o.window, "window", 1, "batches in flight per session (1 = strict lockstep)")
	flag.BoolVar(&o.useNE, "use-ne", false, "run the CDPF-NE variant")
	flag.StringVar(&o.spec, "spec", "", "drive sessions from a serveable spec/v1 cell (FILE or FILE#CELL); per-session seeds override the cell's seed axis")
	flag.BoolVar(&o.verify, "verify", true, "check served records against a local offline run")
	flag.StringVar(&o.benchJSON, "benchjson", "", "also write a benchdiff baseline JSON file")
	flag.StringVar(&o.note, "note", "", "note stored in the -benchjson baseline")
	flag.DurationVar(&o.stepWait, "step-wait", 30*time.Second, "timeout waiting for any single estimate event")
	flag.StringVar(&o.daemon, "daemon", "", "launch this cdpfd command (space-separated) instead of targeting -addr")
	flag.IntVar(&o.restartAfter, "restart-after", 0, "SIGKILL and restart the managed daemon after N estimate events (requires -daemon)")
	flag.IntVar(&o.cluster, "cluster", 0, "cluster mode: spawn N cdpfd backends plus a cdpfgw gateway and drive through the gateway (requires -daemon and -gateway)")
	flag.StringVar(&o.gatewayCmd, "gateway", "", "cdpfgw command (space-separated) for -cluster mode")
	flag.IntVar(&o.drainAfter, "drain-after", 0, "drain and SIGTERM the busiest backend after N estimate events (requires -cluster)")
	flag.IntVar(&o.killAfter, "kill-after", 0, "SIGKILL the busiest backend after N estimate events and relaunch it on its data dir (requires -cluster)")
	flag.StringVar(&o.chaos, "chaos", "", "chaos proxy fault schedule between gateway and backends, e.g. \"latency/delay=5ms/every=7,reset/every=13\" (requires -cluster)")
	flag.Uint64Var(&o.chaosSeed, "chaos-seed", 1, "chaos proxy seed; backend i's proxy uses seed+i")
	flag.Parse()
	if *showVersion {
		fmt.Println("cdpfload", version.String())
		return
	}
	if o.spec != "" {
		var conflicts []string
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "density", "use-ne", "steps":
				conflicts = append(conflicts, "-"+f.Name)
			}
		})
		if len(conflicts) > 0 {
			fmt.Fprintf(os.Stderr, "cdpfload: -spec conflicts with %v (the spec owns those axes)\n", conflicts)
			os.Exit(1)
		}
	}
	o.seed = *seed

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, o, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "cdpfload:", err)
		os.Exit(1)
	}
}

// sessionResult is what one driven session reports back.
type sessionResult struct {
	latencies  []time.Duration
	perBackend map[string][]time.Duration // by X-Backend of the admitting response
	records    []trace.Record
	fiveXX     int // HTTP 5xx responses this session's client ever saw
}

func run(ctx context.Context, o options, out io.Writer) error {
	if o.spec != "" {
		// Resolve the cell once; per-session seeds are overlaid in driveAll.
		// The spec owns the iteration count, which the drive loop and the
		// -restart-after arithmetic read from o.steps.
		cell, _, err := cellspec.LoadCell(o.spec)
		if err != nil {
			return err
		}
		ax := cell.Axes.Normalized()
		o.cellAxes = &ax
		o.steps = ax.Steps
	}
	if o.sessions <= 0 || o.steps <= 0 {
		return fmt.Errorf("need positive -sessions and -steps")
	}
	if o.window <= 0 {
		o.window = 1
	}
	if o.cluster > 0 {
		return runCluster(ctx, o, out)
	}
	if o.gatewayCmd != "" || o.drainAfter > 0 || o.killAfter > 0 || o.chaos != "" {
		return fmt.Errorf("-gateway, -drain-after, -kill-after, and -chaos require -cluster")
	}
	if o.restartAfter > 0 && o.daemon == "" {
		return fmt.Errorf("-restart-after requires -daemon (cdpfload must own the process it kills)")
	}

	base := o.addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimRight(base, "/")
	baseFn := func() string { return base }

	var ctl *daemonCtl
	if o.daemon != "" {
		dir, err := os.MkdirTemp("", "cdpfload-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		if ctl, err = newDaemonCtl(o.daemon, dir); err != nil {
			return err
		}
		if err := ctl.start(ctx); err != nil {
			return err
		}
		defer ctl.stop()
		baseFn = ctl.baseURL
	}

	var trig *eventTrigger
	if o.restartAfter > 0 {
		total := o.sessions * (o.steps + 1)
		if o.restartAfter >= total {
			return fmt.Errorf("-restart-after %d must be below the run's %d total estimate events", o.restartAfter, total)
		}
		trig = &eventTrigger{threshold: int64(o.restartAfter), action: func() { ctl.killRestart(ctx) }}
	}

	var rec recoverer
	if ctl != nil {
		rec = ctl
	}
	results, wall, err := driveAll(ctx, o, baseFn, rec, trig)
	if ctl != nil {
		if ferr := ctl.failed(); ferr != nil {
			return ferr
		}
	}
	if err != nil {
		return err
	}
	if trig != nil && !trig.fired.Load() {
		return fmt.Errorf("-restart-after %d never fired (%d events observed)", o.restartAfter, trig.count.Load())
	}

	var lats []time.Duration
	for _, r := range results {
		lats = append(lats, r.latencies...)
	}
	sum, err := summarize(lats)
	if err != nil {
		return err
	}
	steps, q := sum.n(), sum.q
	throughput := float64(steps) / wall.Seconds()

	fmt.Fprintf(out, "cdpfload: %d sessions x %d iterations against %s (window %d, verify %v)\n",
		o.sessions, o.steps+1, baseFn(), o.window, o.verify)
	if ctl != nil {
		fmt.Fprintf(out, "cdpfload: managed daemon killed and restarted %d time(s) mid-load\n", ctl.restartCount())
	}
	fmt.Fprintf(out, "wall %v  steps %d  throughput %.1f steps/sec\n", wall.Round(time.Millisecond), steps, throughput)
	fmt.Fprintf(out, "step latency p50 %v  p90 %v  p99 %v  max %v\n",
		q(0.50).Round(time.Microsecond), q(0.90).Round(time.Microsecond),
		q(0.99).Round(time.Microsecond), sum.max().Round(time.Microsecond))

	// Bench-format block: parseable by cmd/benchdiff (the cpu: line scopes
	// the wall-clock gates to matching hardware).
	if cpu := benchfmt.HostCPU(); cpu != "" {
		fmt.Fprintf(out, "cpu: %s\n", cpu)
	}
	fmt.Fprintf(out, "BenchmarkServeStepLatencyP50 \t%d\t%d ns/op\n", steps, q(0.50).Nanoseconds())
	fmt.Fprintf(out, "BenchmarkServeStepLatencyP99 \t%d\t%d ns/op\n", steps, q(0.99).Nanoseconds())
	fmt.Fprintf(out, "BenchmarkServeThroughput \t%d\t%d ns/op\t%.2f jobs/sec\n",
		steps, wall.Nanoseconds()/int64(steps), throughput)

	if o.benchJSON != "" {
		b := benchfmt.Baseline{
			Schema:   "bench-serve/v1",
			Recorded: time.Now().Format("2006-01-02"),
			CPU:      benchfmt.HostCPU(),
			Note:     o.note,
			Baseline: map[string]benchfmt.Measurement{
				"BenchmarkServeStepLatencyP50": {NsPerOp: float64(q(0.50).Nanoseconds())},
				"BenchmarkServeStepLatencyP99": {NsPerOp: float64(q(0.99).Nanoseconds())},
				"BenchmarkServeThroughput": {
					NsPerOp:    float64(wall.Nanoseconds() / int64(steps)),
					JobsPerSec: throughput,
				},
			},
		}
		if err := b.Write(o.benchJSON); err != nil {
			return err
		}
		fmt.Fprintf(out, "cdpfload: baseline written to %s\n", o.benchJSON)
	}
	return nil
}

// recoverer is whatever lets a drive loop wait out a transient failure: the
// managed single daemon restarting, or the cluster's gateway riding out a
// backend drain. A nil recoverer means transient failures are fatal.
type recoverer interface {
	awaitReady(ctx context.Context, timeout time.Duration) error
}

// driveAll runs every session drive concurrently and returns the results
// plus wall time; the error is the first failed session's. Measurement
// streams are built before the clock starts and offline-twin verification
// runs after it stops: both recompute the full scenario locally, and billing
// that work to the wall would understate the server's actual throughput.
func driveAll(ctx context.Context, o options, baseFn func() string, rec recoverer, trig *eventTrigger) ([]sessionResult, time.Duration, error) {
	seeds := fleet.Seeds(o.seed, o.sessions)
	client := &http.Client{} // no global timeout: SSE streams live for the whole run
	specs := make([]serve.SessionSpec, o.sessions)
	allBatches := make([][]serve.Batch, o.sessions)
	for i := range specs {
		spec := serve.SessionSpec{ID: fmt.Sprintf("load-%d-%03d", o.seed, i)}
		if o.cellAxes != nil {
			ax := *o.cellAxes
			ax.Seed = seeds[i]
			spec.Cell = &ax
		} else {
			spec.Scenario = scenario.Default(o.density, seeds[i])
			spec.UseNE = o.useNE
			spec.Scenario.Steps = o.steps
		}
		specs[i] = spec
		var err error
		if allBatches[i], err = serve.Observations(spec); err != nil {
			return nil, 0, fmt.Errorf("session %d observations: %w", i, err)
		}
	}

	results := make([]sessionResult, o.sessions)
	errs := make([]error, o.sessions)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < o.sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = driveSession(ctx, client, baseFn, specs[i], allBatches[i], o, rec, trig)
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)
	for i, err := range errs {
		if err != nil {
			return results, wall, fmt.Errorf("session %d: %w", i, err)
		}
	}

	if o.verify {
		for i := 0; i < o.sessions; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				errs[i] = verifyAgainstOffline(specs[i], results[i].records)
			}(i)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				return results, wall, fmt.Errorf("session %d: %w", i, err)
			}
		}
	}
	return results, wall, nil
}

// latSummary answers quantile queries over a sorted latency set.
type latSummary struct{ lats []time.Duration }

func summarize(lats []time.Duration) (latSummary, error) {
	if len(lats) == 0 {
		return latSummary{}, fmt.Errorf("no steps completed")
	}
	sorted := append([]time.Duration(nil), lats...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	return latSummary{lats: sorted}, nil
}

func (s latSummary) n() int { return len(s.lats) }

func (s latSummary) q(p float64) time.Duration {
	i := int(p*float64(len(s.lats))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(s.lats) {
		i = len(s.lats) - 1
	}
	return s.lats[i]
}

func (s latSummary) max() time.Duration { return s.lats[len(s.lats)-1] }

// transientError marks a failure worth retrying when a recoverer is present:
// connection refused across a restart, 503 while recovering, a broken SSE
// stream (a migrated session's old stream ends early). Everything else is
// permanent and fails the session.
type transientError struct{ err error }

func (e transientError) Error() string { return e.err.Error() }
func (e transientError) Unwrap() error { return e.err }

// driveState is the part of a session drive that survives daemon restarts:
// which records arrived (by iteration), when each batch was first admitted,
// and the latencies measured at first receipt. Re-delivered records after a
// resubscribe are checked for equality against what we already hold — a
// recovered daemon re-serving a different record is a determinism failure.
type driveState struct {
	admit        []time.Time
	admitBackend []string // X-Backend header of the admitting response, per k
	got          map[int]trace.Record
	latencies    []time.Duration
	perBackend   map[string][]time.Duration
	fiveXX       int // every 5xx response observed, retried or not
}

// driveSession runs one session end to end: create, subscribe, feed every
// batch in lockstep (up to `window` in flight), and measure
// admission-to-estimate latency per iteration. Offline-twin verification is
// the caller's job (driveAll, after the wall clock stops). When cdpfload
// manages the daemon (ctl != nil) the drive is resumable: a transient
// failure — typically the -restart-after kill — waits for the daemon to
// recover and resumes from the server's NextK.
func driveSession(ctx context.Context, client *http.Client, baseFn func() string, spec serve.SessionSpec, batches []serve.Batch, o options, rec recoverer, trig *eventTrigger) (sessionResult, error) {
	var res sessionResult
	n := len(batches)
	st := &driveState{
		admit: make([]time.Time, n), admitBackend: make([]string, n),
		got: make(map[int]trace.Record, n), perBackend: make(map[string][]time.Duration),
	}

	maxAttempts := 1
	if rec != nil {
		maxAttempts = 8
	}
	for attempt := 1; ; attempt++ {
		err := driveAttempt(ctx, client, baseFn(), spec, batches, o, st, trig)
		if err == nil {
			break
		}
		var te transientError
		if !errors.As(err, &te) || attempt >= maxAttempts {
			return res, err
		}
		if err := rec.awaitReady(ctx, 60*time.Second); err != nil {
			return res, fmt.Errorf("waiting out recovery: %w", err)
		}
	}

	res.records = make([]trace.Record, 0, n)
	for k := 0; k < n; k++ {
		rec, ok := st.got[k]
		if !ok {
			return res, fmt.Errorf("drive finished without record %d", k)
		}
		res.records = append(res.records, rec)
	}
	res.latencies = st.latencies
	res.perBackend = st.perBackend
	res.fiveXX = st.fiveXX
	return res, nil
}

// driveAttempt makes one pass at finishing the session against the daemon's
// current address: look the session up (creating it on 404), subscribe,
// re-feed from the server's NextK — anything admitted but not yet in the WAL
// when a crash hit must be posted again — and fold the event stream into st.
func driveAttempt(ctx context.Context, client *http.Client, base string, spec serve.SessionSpec, batches []serve.Batch, o options, st *driveState, trig *eventTrigger) error {
	n := len(batches)
	info, status, err := getSessionInfo(ctx, client, base, spec.ID)
	if status >= 500 {
		st.fiveXX++
	}
	switch {
	case err != nil:
		if ctx.Err() != nil {
			return ctx.Err()
		}
		return transientError{err}
	case status == http.StatusNotFound:
		var cs int
		info, cs, err = createSession(ctx, client, base, spec)
		if cs >= 500 {
			st.fiveXX++
		}
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			if cs == 0 || cs == http.StatusServiceUnavailable || cs == http.StatusConflict {
				return transientError{err}
			}
			return err
		}
	case status == http.StatusServiceUnavailable:
		return transientError{fmt.Errorf("session info: HTTP 503 (daemon recovering or draining)")}
	case status != http.StatusOK:
		return fmt.Errorf("session info: HTTP %d", status)
	}
	if info.Iterations != n {
		return fmt.Errorf("server reports %d iterations, expected %d", info.Iterations, n)
	}

	// Subscribe before feeding anything so no event can be missed; the stream
	// replays the session's full record history first, which is how records
	// stepped before a crash reach a client that resubscribed after it.
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	req, err := http.NewRequestWithContext(sctx, http.MethodGet,
		base+"/v1/sessions/"+spec.ID+"/estimates", nil)
	if err != nil {
		return err
	}
	resp, err := client.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		return transientError{err}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		if resp.StatusCode >= 500 {
			st.fiveXX++
		}
		if resp.StatusCode == http.StatusServiceUnavailable {
			return transientError{fmt.Errorf("subscribe: HTTP 503")}
		}
		return fmt.Errorf("subscribe: HTTP %d", resp.StatusCode)
	}
	events := make(chan trace.Record, n)
	readErr := make(chan error, 1)
	go readEvents(resp.Body, events, readErr)

	// Feed from the server's cursor, gated by the highest iteration whose
	// estimate has arrived (ackK): at most `window` steps are outstanding.
	// Every currently-ready iteration goes out in one ingest request —
	// admission is atomic server-side, so the group lands as a unit and the
	// shard's batch drain can step it back to back.
	posted, ackK := info.NextK, info.NextK-1
	for len(st.got) < n {
		if hi := min(n, ackK+o.window+1); posted < hi {
			backend, err := postBatches(ctx, client, base, spec.ID, batches[posted:hi], &st.fiveXX)
			if err != nil {
				if ctx.Err() != nil {
					return ctx.Err()
				}
				return transientError{err}
			}
			now := time.Now()
			for ; posted < hi; posted++ {
				if st.admit[posted].IsZero() {
					st.admit[posted] = now
					st.admitBackend[posted] = backend
				}
			}
		}
		select {
		case rec, ok := <-events:
			if !ok {
				if len(st.got) == n {
					return nil
				}
				return transientError{fmt.Errorf("estimate stream ended with %d of %d records", len(st.got), n)}
			}
			if rec.K < 0 || rec.K >= n {
				return fmt.Errorf("estimate for unexpected iteration %d", rec.K)
			}
			if prev, seen := st.got[rec.K]; seen {
				if prev != rec {
					return fmt.Errorf("record %d diverged across reconnect:\nbefore %+v\nafter  %+v", rec.K, prev, rec)
				}
			} else {
				st.got[rec.K] = rec
				if !st.admit[rec.K].IsZero() {
					lat := time.Since(st.admit[rec.K])
					st.latencies = append(st.latencies, lat)
					if bk := st.admitBackend[rec.K]; bk != "" {
						st.perBackend[bk] = append(st.perBackend[bk], lat)
					}
				}
				trig.onEvent()
			}
			if rec.K > ackK {
				ackK = rec.K
			}
		case err := <-readErr:
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return transientError{fmt.Errorf("estimate stream: %w", err)}
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(o.stepWait):
			return transientError{fmt.Errorf("timed out with %d of %d records", len(st.got), n)}
		}
	}
	return nil
}

// getSessionInfo GETs the session; a non-200 status is returned without error
// so the caller can classify it (404 create, 503 retry).
func getSessionInfo(ctx context.Context, client *http.Client, base, id string) (serve.SessionInfo, int, error) {
	var info serve.SessionInfo
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/sessions/"+id, nil)
	if err != nil {
		return info, 0, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return info, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return info, resp.StatusCode, nil
	}
	return info, resp.StatusCode, json.NewDecoder(resp.Body).Decode(&info)
}

// createSession POSTs the spec and returns the created SessionInfo plus the
// HTTP status (0 when the request never completed).
func createSession(ctx context.Context, client *http.Client, base string, spec serve.SessionSpec) (serve.SessionInfo, int, error) {
	var info serve.SessionInfo
	body, err := json.Marshal(spec)
	if err != nil {
		return info, 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/sessions", bytes.NewReader(body))
	if err != nil {
		return info, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return info, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return info, resp.StatusCode, fmt.Errorf("create: %s", readErrBody(resp))
	}
	return info, resp.StatusCode, json.NewDecoder(resp.Body).Decode(&info)
}

// postBatches submits a run of consecutive iteration batches as one ingest
// request, retrying on backpressure (429 when the session queue budget is
// spent, 503 when a shard queue is full) — the load generator's contract is
// to apply pressure, observe shedding, and keep going, not to fail the run.
// Admission is atomic server-side, so a retry re-sends the identical group.
// It returns the X-Backend header of the accepting response (set by the
// gateway in cluster mode, empty when talking to a daemon directly) plus a
// freshly minted X-Request-Id on every attempt so rejections are traceable
// end to end. Every 5xx response — even ones the retry loop absorbs — is
// tallied into fiveXX: the cluster kill drill asserts a crashed backend's
// sessions never saw one.
func postBatches(ctx context.Context, client *http.Client, base, id string, bs []serve.Batch, fiveXX *int) (string, error) {
	body, err := json.Marshal(serve.IngestRequest{Batches: bs})
	if err != nil {
		return "", err
	}
	backoff := 2 * time.Millisecond
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			base+"/v1/sessions/"+id+"/measurements", bytes.NewReader(body))
		if err != nil {
			return "", err
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Request-Id", serve.NewRequestID())
		resp, err := client.Do(req)
		if err != nil {
			return "", err
		}
		status, msg := resp.StatusCode, ""
		if status >= 500 {
			*fiveXX++
		}
		backend := resp.Header.Get("X-Backend")
		if status != http.StatusAccepted {
			msg = readErrBody(resp)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch status {
		case http.StatusAccepted:
			return backend, nil
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			select {
			case <-ctx.Done():
				return "", ctx.Err()
			case <-time.After(backoff):
			}
			if backoff < 100*time.Millisecond {
				backoff *= 2
			}
		default:
			return "", fmt.Errorf("ingest k=%d..%d: %s", bs[0].K, bs[len(bs)-1].K, msg)
		}
	}
}

// readErrBody extracts the JSON error envelope (or a fallback) from a non-2xx
// response, including the request ID when the server echoed one.
func readErrBody(resp *http.Response) string {
	var eb struct {
		Error     string `json:"error"`
		RequestID string `json:"request_id"`
	}
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	if json.Unmarshal(data, &eb) == nil && eb.Error != "" {
		if eb.RequestID != "" {
			return fmt.Sprintf("HTTP %d: %s (request %s)", resp.StatusCode, eb.Error, eb.RequestID)
		}
		return fmt.Sprintf("HTTP %d: %s", resp.StatusCode, eb.Error)
	}
	return fmt.Sprintf("HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(data)))
}

// readEvents parses the SSE stream, forwarding each "estimate" record and
// closing the channel on the terminal "done" event.
func readEvents(r io.Reader, ch chan<- trace.Record, errCh chan<- error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	event, data := "", ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			switch event {
			case "estimate":
				var rec trace.Record
				if err := json.Unmarshal([]byte(data), &rec); err != nil {
					errCh <- fmt.Errorf("bad estimate event: %w", err)
					return
				}
				ch <- rec
			case "done":
				close(ch)
				return
			}
			event, data = "", ""
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = strings.TrimPrefix(line, "data: ")
		}
	}
	if err := sc.Err(); err != nil {
		errCh <- err
		return
	}
	errCh <- io.ErrUnexpectedEOF
}

// verifyAgainstOffline recomputes the session offline and requires the served
// records to match exactly — the wire hop must not perturb a single bit.
func verifyAgainstOffline(spec serve.SessionSpec, got []trace.Record) error {
	ref, err := serve.OfflineTrace(spec)
	if err != nil {
		return fmt.Errorf("offline twin: %w", err)
	}
	if len(got) != len(ref.Records) {
		return fmt.Errorf("verify: served %d records, offline %d", len(got), len(ref.Records))
	}
	for i, want := range ref.Records {
		if got[i] != want {
			return fmt.Errorf("verify: record %d diverges from offline run:\nserved  %+v\noffline %+v", i, got[i], want)
		}
	}
	return nil
}
