package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/benchfmt"
	"repro/internal/chaos"
)

// runCluster is cdpfload's cluster mode: it spawns -cluster cdpfd backends
// (each with its own durability directory and -drain-linger armed), a cdpfgw
// gateway in front of them, and drives every session through the gateway.
// With -drain-after N, once N estimate events have arrived the busiest
// backend is evacuated through the gateway and SIGTERMed mid-run — the run
// then proves that zero sessions were lost and every trace, migrated or
// not, still matches its offline twin (-verify is on by default).
//
// With -kill-after N the busiest backend is SIGKILLed instead — a real crash
// with nothing evacuated — and relaunched on its own data directory at the
// same address. The gateway must park its sessions' requests through the WAL
// recovery window: any client-visible 5xx on a session the victim served
// fails the run (unless -chaos is also injecting faults, which can
// legitimately surface errors on any backend).
func runCluster(ctx context.Context, o options, out io.Writer) error {
	if o.cluster < 2 {
		return fmt.Errorf("-cluster needs at least 2 backends, got %d", o.cluster)
	}
	if o.daemon == "" || o.gatewayCmd == "" {
		return fmt.Errorf("-cluster requires both -daemon (backend command) and -gateway (cdpfgw command)")
	}
	if o.restartAfter > 0 {
		return fmt.Errorf("-restart-after is single-daemon fault injection; use -drain-after or -kill-after with -cluster")
	}
	if o.drainAfter > 0 && o.killAfter > 0 {
		return fmt.Errorf("-drain-after and -kill-after are mutually exclusive drills")
	}
	total := o.sessions * (o.steps + 1)
	if o.drainAfter > 0 && o.drainAfter >= total {
		return fmt.Errorf("-drain-after %d must be below the run's %d total estimate events", o.drainAfter, total)
	}
	if o.killAfter > 0 && o.killAfter >= total {
		return fmt.Errorf("-kill-after %d must be below the run's %d total estimate events", o.killAfter, total)
	}
	var sched *chaos.Schedule
	if o.chaos != "" {
		s, err := chaos.ParseSchedule(o.chaos)
		if err != nil {
			return fmt.Errorf("-chaos: %w", err)
		}
		sched = &s
	}

	dir, err := os.MkdirTemp("", "cdpfcluster-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	ctl, err := newClusterCtl(o.daemon, o.gatewayCmd, o.cluster, dir)
	if err != nil {
		return err
	}
	ctl.chaosSched, ctl.chaosSeed = sched, o.chaosSeed
	if err := ctl.start(ctx); err != nil {
		ctl.stopAll()
		return err
	}
	defer ctl.stopAll()

	var trig *eventTrigger
	switch {
	case o.drainAfter > 0:
		trig = &eventTrigger{threshold: int64(o.drainAfter), action: func() { ctl.drainBusiest(ctx) }}
	case o.killAfter > 0:
		trig = &eventTrigger{threshold: int64(o.killAfter), action: func() { ctl.killBusiest(ctx) }}
	}

	results, wall, err := driveAll(ctx, o, ctl.gatewayURL, ctl, trig)
	if ferr := ctl.failed(); ferr != nil {
		return ferr
	}
	if err != nil {
		return err
	}
	if o.drainAfter > 0 {
		if !trig.fired.Load() {
			return fmt.Errorf("-drain-after %d never fired (%d events observed)", o.drainAfter, trig.count.Load())
		}
		if ctl.migratedCount() == 0 {
			return fmt.Errorf("drained backend %s had no sessions to migrate — the drill proved nothing", ctl.drainedName())
		}
	}
	killOwned := 0
	var gwStats gatewayStats
	if o.killAfter > 0 {
		if !trig.fired.Load() {
			return fmt.Errorf("-kill-after %d never fired (%d events observed)", o.killAfter, trig.count.Load())
		}
		victim := ctl.killedName()
		if victim == "" {
			return fmt.Errorf("kill drill never completed")
		}
		// Zero client-visible 5xx for the victim's sessions: every batch the
		// victim admitted rode out the crash behind the gateway's parking.
		// With -chaos active any backend can legitimately error, so the
		// assertion only holds in a clean kill drill.
		for i, r := range results {
			if len(r.perBackend[victim]) == 0 {
				continue
			}
			killOwned++
			if o.chaos == "" && r.fiveXX > 0 {
				return fmt.Errorf("session %d (served by killed backend %s) saw %d client-visible 5xx responses; want zero", i, victim, r.fiveXX)
			}
		}
		if killOwned == 0 {
			return fmt.Errorf("killed backend %s had served no sessions — the drill proved nothing", victim)
		}
		if gwStats, err = scrapeGatewayStats(ctl.gatewayURL()); err != nil {
			return fmt.Errorf("scraping gateway metrics after the kill drill: %w", err)
		}
	}

	var lats []time.Duration
	perBackend := make(map[string][]time.Duration)
	for _, r := range results {
		lats = append(lats, r.latencies...)
		for bk, ls := range r.perBackend {
			perBackend[bk] = append(perBackend[bk], ls...)
		}
	}
	sum, err := summarize(lats)
	if err != nil {
		return err
	}
	steps := sum.n()
	throughput := float64(steps) / wall.Seconds()

	fmt.Fprintf(out, "cdpfload: cluster of %d backends behind %s: %d sessions x %d iterations (window %d, verify %v)\n",
		o.cluster, ctl.gatewayURL(), o.sessions, o.steps+1, o.window, o.verify)
	if name := ctl.drainedName(); name != "" {
		fmt.Fprintf(out, "cdpfload: drained %s mid-run: %d sessions migrated, 0 lost\n", name, ctl.migratedCount())
	}
	if name := ctl.killedName(); name != "" {
		suffix := ""
		if o.chaos == "" {
			suffix = ", zero client-visible 5xx"
		}
		fmt.Fprintf(out, "cdpfload: killed %s mid-run (SIGKILL): relaunched on its data dir, recovered in %v, %d session(s) rode it out%s\n",
			name, ctl.recoveryTime().Round(time.Millisecond), killOwned, suffix)
	}
	if len(ctl.proxies) > 0 {
		fmt.Fprintf(out, "cdpfload: chaos faults injected: %s\n", formatFaultTotals(ctl.faultTotals()))
	}
	fmt.Fprintf(out, "wall %v  steps %d  throughput %.1f steps/sec\n", wall.Round(time.Millisecond), steps, throughput)
	fmt.Fprintf(out, "step latency p50 %v  p90 %v  p99 %v  max %v\n",
		sum.q(0.50).Round(time.Microsecond), sum.q(0.90).Round(time.Microsecond),
		sum.q(0.99).Round(time.Microsecond), sum.max().Round(time.Microsecond))
	names := make([]string, 0, len(perBackend))
	for bk := range perBackend {
		names = append(names, bk)
	}
	sort.Strings(names)
	for _, bk := range names {
		bsum, err := summarize(perBackend[bk])
		if err != nil {
			continue
		}
		fmt.Fprintf(out, "backend %s: steps %d  p50 %v  p99 %v  max %v\n",
			bk, bsum.n(), bsum.q(0.50).Round(time.Microsecond),
			bsum.q(0.99).Round(time.Microsecond), bsum.max().Round(time.Microsecond))
	}

	if cpu := benchfmt.HostCPU(); cpu != "" {
		fmt.Fprintf(out, "cpu: %s\n", cpu)
	}
	fmt.Fprintf(out, "BenchmarkClusterStepLatencyP50 \t%d\t%d ns/op\n", steps, sum.q(0.50).Nanoseconds())
	fmt.Fprintf(out, "BenchmarkClusterStepLatencyP99 \t%d\t%d ns/op\n", steps, sum.q(0.99).Nanoseconds())
	fmt.Fprintf(out, "BenchmarkClusterThroughput \t%d\t%d ns/op\t%.2f jobs/sec\n",
		steps, wall.Nanoseconds()/int64(steps), throughput)
	if o.killAfter > 0 {
		// Chaos drill metrics, all gateable by benchdiff: recovery time for
		// the SIGKILLed backend (kill → healthz "ready" again), the parked-
		// request latency p99 from the gateway's histogram, and the gateway's
		// retry total (a count, reported in the ns/op slot so the gate's
		// tolerance applies to it too).
		fmt.Fprintf(out, "BenchmarkClusterRecovery \t1\t%d ns/op\n", ctl.recoveryTime().Nanoseconds())
		fmt.Fprintf(out, "BenchmarkClusterParkLatencyP99 \t1\t%d ns/op\n", gwStats.parkP99.Nanoseconds())
		fmt.Fprintf(out, "BenchmarkClusterRetries \t1\t%d ns/op\n", gwStats.retries)
	}

	if o.benchJSON != "" {
		schema := "bench-cluster/v1"
		base := map[string]benchfmt.Measurement{
			"BenchmarkClusterStepLatencyP50": {NsPerOp: float64(sum.q(0.50).Nanoseconds())},
			"BenchmarkClusterStepLatencyP99": {NsPerOp: float64(sum.q(0.99).Nanoseconds())},
			"BenchmarkClusterThroughput": {
				NsPerOp:    float64(wall.Nanoseconds() / int64(steps)),
				JobsPerSec: throughput,
			},
		}
		if o.killAfter > 0 {
			schema = "bench-chaos/v1"
			base["BenchmarkClusterRecovery"] = benchfmt.Measurement{NsPerOp: float64(ctl.recoveryTime().Nanoseconds())}
			base["BenchmarkClusterParkLatencyP99"] = benchfmt.Measurement{NsPerOp: float64(gwStats.parkP99.Nanoseconds())}
			base["BenchmarkClusterRetries"] = benchfmt.Measurement{NsPerOp: float64(gwStats.retries)}
		}
		b := benchfmt.Baseline{
			Schema:   schema,
			Recorded: time.Now().Format("2006-01-02"),
			CPU:      benchfmt.HostCPU(),
			Note:     o.note,
			Baseline: base,
		}
		if err := b.Write(o.benchJSON); err != nil {
			return err
		}
		fmt.Fprintf(out, "cdpfload: baseline written to %s\n", o.benchJSON)
	}
	return nil
}

// clusterProc is one spawned process (backend or gateway).
type clusterProc struct {
	name     string
	addrFile string
	cmd      *exec.Cmd
	base     string
}

// clusterCtl owns the spawned fleet: N backends plus the gateway, and — when
// -chaos is set — one fault-injecting proxy per backend sitting between the
// gateway and that backend.
type clusterCtl struct {
	daemonArgv []string
	gwArgv     []string
	dir        string
	backends   []*clusterProc
	gw         *clusterProc

	chaosSched *chaos.Schedule
	chaosSeed  uint64
	proxies    []*chaos.Proxy

	mu       sync.Mutex
	err      error
	drained  string
	migrated int
	killed   string
	recovery time.Duration
}

func newClusterCtl(daemonCmd, gatewayCmd string, n int, dir string) (*clusterCtl, error) {
	daemonArgv := strings.Fields(daemonCmd)
	gwArgv := strings.Fields(gatewayCmd)
	if len(daemonArgv) == 0 || len(gwArgv) == 0 {
		return nil, fmt.Errorf("empty -daemon or -gateway command")
	}
	c := &clusterCtl{daemonArgv: daemonArgv, gwArgv: gwArgv, dir: dir}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("b%d", i)
		c.backends = append(c.backends, &clusterProc{
			name:     name,
			addrFile: filepath.Join(dir, name+".addr"),
		})
	}
	c.gw = &clusterProc{name: "gateway", addrFile: filepath.Join(dir, "gw.addr")}
	return c, nil
}

// start boots every backend (each with its own durability directory and a
// drain-linger window so SIGTERM leaves time to evacuate), then the gateway
// pointed at all of them, and waits for the gateway to report ready.
func (c *clusterCtl) start(ctx context.Context) error {
	var ringArg []string
	for i, p := range c.backends {
		argv := append(append([]string(nil), c.daemonArgv...),
			"-addr", "127.0.0.1:0",
			"-addr-file", p.addrFile,
			"-data-dir", filepath.Join(c.dir, p.name+"-data"),
			"-drain-linger", "30s")
		if err := c.spawn(ctx, p, argv); err != nil {
			return err
		}
		route := strings.TrimPrefix(p.base, "http://")
		if c.chaosSched != nil {
			// The gateway routes to the proxy; readiness checks and the kill
			// supervisor keep talking to the backend directly.
			px, err := chaos.Start(chaos.Config{
				Target:   route,
				Seed:     c.chaosSeed + uint64(i),
				Schedule: *c.chaosSched,
			})
			if err != nil {
				return fmt.Errorf("chaos proxy for %s: %w", p.name, err)
			}
			c.proxies = append(c.proxies, px)
			route = px.Addr()
		}
		ringArg = append(ringArg, p.name+"="+route)
	}
	argv := append(append([]string(nil), c.gwArgv...),
		"-addr", "127.0.0.1:0",
		"-addr-file", c.gw.addrFile,
		"-probe-every", "100ms",
		"-backends", strings.Join(ringArg, ","))
	return c.spawn(ctx, c.gw, argv)
}

// spawn starts one process and waits for its addr-file plus a ready healthz.
func (c *clusterCtl) spawn(ctx context.Context, p *clusterProc, argv []string) error {
	os.Remove(p.addrFile)
	cmd := exec.Command(argv[0], argv[1:]...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("starting %s: %w", p.name, err)
	}
	p.cmd = cmd
	deadline := time.Now().Add(60 * time.Second)
	for {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("%s never became ready", p.name)
		}
		if base, ok := readyBase(p.addrFile); ok {
			p.base = base
			return nil
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// gatewayURL is the drive target; it never changes (only backends come and
// go behind it).
func (c *clusterCtl) gatewayURL() string { return c.gw.base }

// awaitReady waits for the gateway to answer ready — the cluster-mode
// recoverer hook driveSession uses after a transient failure (typically the
// SSE stream cut when a session's backend was evacuated under it).
func (c *clusterCtl) awaitReady(ctx context.Context, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		if err := c.failed(); err != nil {
			return err
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("gateway not ready within %v", timeout)
		}
		if _, ok := readyBase(c.gw.addrFile); ok {
			return nil
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// drainBusiest picks the backend holding the most sessions (gateway census,
// ties broken by name for determinism), evacuates it through the gateway,
// then SIGTERMs it and requires a clean exit — the full decommissioning
// drill, mid-load.
func (c *clusterCtl) drainBusiest(ctx context.Context) {
	name, err := c.busiestBackend(ctx)
	if err != nil {
		c.setErr(fmt.Errorf("choosing drain victim: %w", err))
		return
	}
	fmt.Fprintf(os.Stderr, "cdpfload: draining busiest backend %s mid-run\n", name)
	moved, err := c.migrateViaGateway(ctx, name)
	if err != nil {
		c.setErr(fmt.Errorf("evacuating %s: %w", name, err))
		return
	}
	c.mu.Lock()
	c.drained, c.migrated = name, moved
	c.mu.Unlock()

	var victim *clusterProc
	for _, p := range c.backends {
		if p.name == name {
			victim = p
			break
		}
	}
	if victim == nil || victim.cmd == nil {
		c.setErr(fmt.Errorf("drain victim %s has no process", name))
		return
	}
	if err := victim.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		c.setErr(fmt.Errorf("SIGTERM %s: %w", name, err))
		return
	}
	done := make(chan error, 1)
	go func() { done <- victim.cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			c.setErr(fmt.Errorf("drained backend %s exited uncleanly: %w", name, err))
			return
		}
		fmt.Fprintf(os.Stderr, "cdpfload: backend %s exited 0 after evacuating %d sessions\n", name, moved)
	case <-time.After(60 * time.Second):
		victim.cmd.Process.Kill()
		c.setErr(fmt.Errorf("drained backend %s did not exit within 60s", name))
	}
}

// killBusiest is the crash drill behind -kill-after: SIGKILL the backend
// holding the most sessions — no drain, no evacuation, in-flight batches die
// in kernel buffers — then relaunch it on the same data directory AND the
// same address (the gateway's ring, and any chaos proxy, still point there).
// spawn waits for healthz to answer "ready", which a recovering daemon only
// does after WAL replay finishes, so the measured duration is the full
// crash-recovery window the gateway had to park through.
func (c *clusterCtl) killBusiest(ctx context.Context) {
	name, err := c.busiestBackend(ctx)
	if err != nil {
		c.setErr(fmt.Errorf("choosing kill victim: %w", err))
		return
	}
	var victim *clusterProc
	for _, p := range c.backends {
		if p.name == name {
			victim = p
			break
		}
	}
	if victim == nil || victim.cmd == nil || victim.cmd.Process == nil {
		c.setErr(fmt.Errorf("kill victim %s has no process", name))
		return
	}
	addr := strings.TrimPrefix(victim.base, "http://")
	fmt.Fprintf(os.Stderr, "cdpfload: kill -9 on busiest backend %s (%s), relaunching on its data dir\n", name, addr)
	start := time.Now()
	victim.cmd.Process.Kill()
	victim.cmd.Wait()
	argv := append(append([]string(nil), c.daemonArgv...),
		"-addr", addr,
		"-addr-file", victim.addrFile,
		"-data-dir", filepath.Join(c.dir, victim.name+"-data"),
		"-drain-linger", "30s")
	if err := c.spawn(ctx, victim, argv); err != nil {
		c.setErr(fmt.Errorf("relaunching killed backend %s: %w", name, err))
		return
	}
	d := time.Since(start)
	c.mu.Lock()
	c.killed, c.recovery = name, d
	c.mu.Unlock()
	fmt.Fprintf(os.Stderr, "cdpfload: backend %s back at %s, recovered in %v\n", name, addr, d.Round(time.Millisecond))
}

// busiestBackend reads the gateway's /cluster census.
func (c *clusterCtl) busiestBackend(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.gw.base+"/cluster", nil)
	if err != nil {
		return "", err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	var info struct {
		Sessions map[string]int `json:"sessions_per_backend"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return "", err
	}
	best, bestN := "", -1
	names := make([]string, 0, len(info.Sessions))
	for name := range info.Sessions {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if n := info.Sessions[name]; n > bestN {
			best, bestN = name, n
		}
	}
	if best == "" {
		return "", fmt.Errorf("empty census from /cluster")
	}
	return best, nil
}

// migrateViaGateway POSTs the explicit evacuation and returns how many
// sessions moved.
func (c *clusterCtl) migrateViaGateway(ctx context.Context, name string) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.gw.base+"/admin/migrate?backend="+name, nil)
	if err != nil {
		return 0, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(data)))
	}
	var rep struct {
		Moved  map[string]string `json:"moved"`
		Errors []string          `json:"errors"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return 0, err
	}
	if len(rep.Errors) > 0 {
		return len(rep.Moved), fmt.Errorf("migration errors: %s", strings.Join(rep.Errors, "; "))
	}
	return len(rep.Moved), nil
}

func (c *clusterCtl) setErr(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	c.mu.Unlock()
}

func (c *clusterCtl) failed() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

func (c *clusterCtl) drainedName() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.drained
}

func (c *clusterCtl) migratedCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.migrated
}

func (c *clusterCtl) killedName() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.killed
}

// recoveryTime is how long the killed backend took from SIGKILL to healthz
// "ready" again (zero until killBusiest completes).
func (c *clusterCtl) recoveryTime() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.recovery
}

// faultTotals aggregates injected-fault counts across every chaos proxy.
func (c *clusterCtl) faultTotals() map[chaos.Kind]uint64 {
	out := make(map[chaos.Kind]uint64)
	for _, px := range c.proxies {
		for k, n := range px.FaultCounts() {
			out[k] += n
		}
	}
	return out
}

func formatFaultTotals(t map[chaos.Kind]uint64) string {
	if len(t) == 0 {
		return "none"
	}
	kinds := make([]string, 0, len(t))
	for k := range t {
		kinds = append(kinds, string(k))
	}
	sort.Strings(kinds)
	parts := make([]string, 0, len(kinds))
	for _, k := range kinds {
		parts = append(parts, fmt.Sprintf("%s=%d", k, t[chaos.Kind(k)]))
	}
	return strings.Join(parts, " ")
}

// stopAll shuts the gateway down first (no new routing), then every backend
// that is still running.
func (c *clusterCtl) stopAll() {
	procs := append([]*clusterProc{c.gw}, c.backends...)
	for _, p := range procs {
		if p == nil || p.cmd == nil || p.cmd.Process == nil {
			continue
		}
		name := c.drainedName()
		if p.name == name {
			continue // already reaped by drainBusiest
		}
		p.cmd.Process.Signal(os.Interrupt)
	}
	for _, p := range procs {
		if p == nil || p.cmd == nil || p.cmd.Process == nil || p.name == c.drainedName() {
			continue
		}
		done := make(chan error, 1)
		go func(p *clusterProc) { done <- p.cmd.Wait() }(p)
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			p.cmd.Process.Kill()
			p.cmd.Wait()
		}
	}
	for _, px := range c.proxies {
		px.Close()
	}
}

// gatewayStats is the slice of the gateway's /metrics the chaos drill
// reports: total routing retries and the parked-request latency p99.
type gatewayStats struct {
	retries int64
	parkP99 time.Duration
}

// scrapeGatewayStats pulls /metrics and extracts cdpfgw_route_retries_total plus
// the p99 of the cdpfgw_park_latency_seconds histogram (the bucket upper
// bound containing the 99th percentile; zero when nothing was ever parked).
func scrapeGatewayStats(base string) (gatewayStats, error) {
	var gs gatewayStats
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return gs, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return gs, err
	}
	if resp.StatusCode != http.StatusOK {
		return gs, fmt.Errorf("metrics scrape: HTTP %d", resp.StatusCode)
	}
	type bucket struct {
		le  float64
		cum uint64
	}
	var buckets []bucket
	for _, line := range strings.Split(string(data), "\n") {
		if v, ok := strings.CutPrefix(line, "cdpfgw_route_retries_total "); ok {
			if n, err := strconv.ParseInt(strings.TrimSpace(v), 10, 64); err == nil {
				gs.retries = n
			}
			continue
		}
		rest, ok := strings.CutPrefix(line, `cdpfgw_park_latency_seconds_bucket{le="`)
		if !ok {
			continue
		}
		leStr, cntStr, ok := strings.Cut(rest, `"} `)
		if !ok {
			continue
		}
		le := math.Inf(1)
		if leStr != "+Inf" {
			f, err := strconv.ParseFloat(leStr, 64)
			if err != nil {
				continue
			}
			le = f
		}
		cnt, err := strconv.ParseUint(strings.TrimSpace(cntStr), 10, 64)
		if err != nil {
			continue
		}
		buckets = append(buckets, bucket{le, cnt})
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].le < buckets[j].le })
	n := len(buckets)
	if n == 0 || buckets[n-1].cum == 0 {
		return gs, nil
	}
	rank := uint64(math.Ceil(0.99 * float64(buckets[n-1].cum)))
	for i, b := range buckets {
		if b.cum < rank {
			continue
		}
		sec := b.le
		if math.IsInf(sec, 1) && i > 0 {
			sec = buckets[i-1].le // overflow bucket: report the largest finite bound
		}
		if !math.IsInf(sec, 1) {
			gs.parkP99 = time.Duration(sec * float64(time.Second))
		}
		break
	}
	return gs, nil
}
