package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/benchfmt"
)

// runCluster is cdpfload's cluster mode: it spawns -cluster cdpfd backends
// (each with its own durability directory and -drain-linger armed), a cdpfgw
// gateway in front of them, and drives every session through the gateway.
// With -drain-after N, once N estimate events have arrived the busiest
// backend is evacuated through the gateway and SIGTERMed mid-run — the run
// then proves that zero sessions were lost and every trace, migrated or
// not, still matches its offline twin (-verify is on by default).
func runCluster(ctx context.Context, o options, out io.Writer) error {
	if o.cluster < 2 {
		return fmt.Errorf("-cluster needs at least 2 backends, got %d", o.cluster)
	}
	if o.daemon == "" || o.gatewayCmd == "" {
		return fmt.Errorf("-cluster requires both -daemon (backend command) and -gateway (cdpfgw command)")
	}
	if o.restartAfter > 0 {
		return fmt.Errorf("-restart-after is single-daemon fault injection; use -drain-after with -cluster")
	}
	if o.drainAfter > 0 {
		if total := o.sessions * (o.steps + 1); o.drainAfter >= total {
			return fmt.Errorf("-drain-after %d must be below the run's %d total estimate events", o.drainAfter, total)
		}
	}

	dir, err := os.MkdirTemp("", "cdpfcluster-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	ctl, err := newClusterCtl(o.daemon, o.gatewayCmd, o.cluster, dir)
	if err != nil {
		return err
	}
	if err := ctl.start(ctx); err != nil {
		ctl.stopAll()
		return err
	}
	defer ctl.stopAll()

	var trig *eventTrigger
	if o.drainAfter > 0 {
		trig = &eventTrigger{threshold: int64(o.drainAfter), action: func() { ctl.drainBusiest(ctx) }}
	}

	results, wall, err := driveAll(ctx, o, ctl.gatewayURL, ctl, trig)
	if ferr := ctl.failed(); ferr != nil {
		return ferr
	}
	if err != nil {
		return err
	}
	if trig != nil {
		if !trig.fired.Load() {
			return fmt.Errorf("-drain-after %d never fired (%d events observed)", o.drainAfter, trig.count.Load())
		}
		if ctl.migratedCount() == 0 {
			return fmt.Errorf("drained backend %s had no sessions to migrate — the drill proved nothing", ctl.drainedName())
		}
	}

	var lats []time.Duration
	perBackend := make(map[string][]time.Duration)
	for _, r := range results {
		lats = append(lats, r.latencies...)
		for bk, ls := range r.perBackend {
			perBackend[bk] = append(perBackend[bk], ls...)
		}
	}
	sum, err := summarize(lats)
	if err != nil {
		return err
	}
	steps := sum.n()
	throughput := float64(steps) / wall.Seconds()

	fmt.Fprintf(out, "cdpfload: cluster of %d backends behind %s: %d sessions x %d iterations (window %d, verify %v)\n",
		o.cluster, ctl.gatewayURL(), o.sessions, o.steps+1, o.window, o.verify)
	if name := ctl.drainedName(); name != "" {
		fmt.Fprintf(out, "cdpfload: drained %s mid-run: %d sessions migrated, 0 lost\n", name, ctl.migratedCount())
	}
	fmt.Fprintf(out, "wall %v  steps %d  throughput %.1f steps/sec\n", wall.Round(time.Millisecond), steps, throughput)
	fmt.Fprintf(out, "step latency p50 %v  p90 %v  p99 %v  max %v\n",
		sum.q(0.50).Round(time.Microsecond), sum.q(0.90).Round(time.Microsecond),
		sum.q(0.99).Round(time.Microsecond), sum.max().Round(time.Microsecond))
	names := make([]string, 0, len(perBackend))
	for bk := range perBackend {
		names = append(names, bk)
	}
	sort.Strings(names)
	for _, bk := range names {
		bsum, err := summarize(perBackend[bk])
		if err != nil {
			continue
		}
		fmt.Fprintf(out, "backend %s: steps %d  p50 %v  p99 %v  max %v\n",
			bk, bsum.n(), bsum.q(0.50).Round(time.Microsecond),
			bsum.q(0.99).Round(time.Microsecond), bsum.max().Round(time.Microsecond))
	}

	if cpu := benchfmt.HostCPU(); cpu != "" {
		fmt.Fprintf(out, "cpu: %s\n", cpu)
	}
	fmt.Fprintf(out, "BenchmarkClusterStepLatencyP50 \t%d\t%d ns/op\n", steps, sum.q(0.50).Nanoseconds())
	fmt.Fprintf(out, "BenchmarkClusterStepLatencyP99 \t%d\t%d ns/op\n", steps, sum.q(0.99).Nanoseconds())
	fmt.Fprintf(out, "BenchmarkClusterThroughput \t%d\t%d ns/op\t%.2f jobs/sec\n",
		steps, wall.Nanoseconds()/int64(steps), throughput)

	if o.benchJSON != "" {
		b := benchfmt.Baseline{
			Schema:   "bench-cluster/v1",
			Recorded: time.Now().Format("2006-01-02"),
			CPU:      benchfmt.HostCPU(),
			Note:     o.note,
			Baseline: map[string]benchfmt.Measurement{
				"BenchmarkClusterStepLatencyP50": {NsPerOp: float64(sum.q(0.50).Nanoseconds())},
				"BenchmarkClusterStepLatencyP99": {NsPerOp: float64(sum.q(0.99).Nanoseconds())},
				"BenchmarkClusterThroughput": {
					NsPerOp:    float64(wall.Nanoseconds() / int64(steps)),
					JobsPerSec: throughput,
				},
			},
		}
		if err := b.Write(o.benchJSON); err != nil {
			return err
		}
		fmt.Fprintf(out, "cdpfload: baseline written to %s\n", o.benchJSON)
	}
	return nil
}

// clusterProc is one spawned process (backend or gateway).
type clusterProc struct {
	name     string
	addrFile string
	cmd      *exec.Cmd
	base     string
}

// clusterCtl owns the spawned fleet: N backends plus the gateway.
type clusterCtl struct {
	daemonArgv []string
	gwArgv     []string
	dir        string
	backends   []*clusterProc
	gw         *clusterProc

	mu       sync.Mutex
	err      error
	drained  string
	migrated int
}

func newClusterCtl(daemonCmd, gatewayCmd string, n int, dir string) (*clusterCtl, error) {
	daemonArgv := strings.Fields(daemonCmd)
	gwArgv := strings.Fields(gatewayCmd)
	if len(daemonArgv) == 0 || len(gwArgv) == 0 {
		return nil, fmt.Errorf("empty -daemon or -gateway command")
	}
	c := &clusterCtl{daemonArgv: daemonArgv, gwArgv: gwArgv, dir: dir}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("b%d", i)
		c.backends = append(c.backends, &clusterProc{
			name:     name,
			addrFile: filepath.Join(dir, name+".addr"),
		})
	}
	c.gw = &clusterProc{name: "gateway", addrFile: filepath.Join(dir, "gw.addr")}
	return c, nil
}

// start boots every backend (each with its own durability directory and a
// drain-linger window so SIGTERM leaves time to evacuate), then the gateway
// pointed at all of them, and waits for the gateway to report ready.
func (c *clusterCtl) start(ctx context.Context) error {
	var ringArg []string
	for _, p := range c.backends {
		argv := append(append([]string(nil), c.daemonArgv...),
			"-addr", "127.0.0.1:0",
			"-addr-file", p.addrFile,
			"-data-dir", filepath.Join(c.dir, p.name+"-data"),
			"-drain-linger", "30s")
		if err := c.spawn(ctx, p, argv); err != nil {
			return err
		}
		ringArg = append(ringArg, p.name+"="+strings.TrimPrefix(p.base, "http://"))
	}
	argv := append(append([]string(nil), c.gwArgv...),
		"-addr", "127.0.0.1:0",
		"-addr-file", c.gw.addrFile,
		"-probe-every", "100ms",
		"-backends", strings.Join(ringArg, ","))
	return c.spawn(ctx, c.gw, argv)
}

// spawn starts one process and waits for its addr-file plus a ready healthz.
func (c *clusterCtl) spawn(ctx context.Context, p *clusterProc, argv []string) error {
	os.Remove(p.addrFile)
	cmd := exec.Command(argv[0], argv[1:]...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("starting %s: %w", p.name, err)
	}
	p.cmd = cmd
	deadline := time.Now().Add(60 * time.Second)
	for {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("%s never became ready", p.name)
		}
		if base, ok := readyBase(p.addrFile); ok {
			p.base = base
			return nil
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// gatewayURL is the drive target; it never changes (only backends come and
// go behind it).
func (c *clusterCtl) gatewayURL() string { return c.gw.base }

// awaitReady waits for the gateway to answer ready — the cluster-mode
// recoverer hook driveSession uses after a transient failure (typically the
// SSE stream cut when a session's backend was evacuated under it).
func (c *clusterCtl) awaitReady(ctx context.Context, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		if err := c.failed(); err != nil {
			return err
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("gateway not ready within %v", timeout)
		}
		if _, ok := readyBase(c.gw.addrFile); ok {
			return nil
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// drainBusiest picks the backend holding the most sessions (gateway census,
// ties broken by name for determinism), evacuates it through the gateway,
// then SIGTERMs it and requires a clean exit — the full decommissioning
// drill, mid-load.
func (c *clusterCtl) drainBusiest(ctx context.Context) {
	name, err := c.busiestBackend(ctx)
	if err != nil {
		c.setErr(fmt.Errorf("choosing drain victim: %w", err))
		return
	}
	fmt.Fprintf(os.Stderr, "cdpfload: draining busiest backend %s mid-run\n", name)
	moved, err := c.migrateViaGateway(ctx, name)
	if err != nil {
		c.setErr(fmt.Errorf("evacuating %s: %w", name, err))
		return
	}
	c.mu.Lock()
	c.drained, c.migrated = name, moved
	c.mu.Unlock()

	var victim *clusterProc
	for _, p := range c.backends {
		if p.name == name {
			victim = p
			break
		}
	}
	if victim == nil || victim.cmd == nil {
		c.setErr(fmt.Errorf("drain victim %s has no process", name))
		return
	}
	if err := victim.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		c.setErr(fmt.Errorf("SIGTERM %s: %w", name, err))
		return
	}
	done := make(chan error, 1)
	go func() { done <- victim.cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			c.setErr(fmt.Errorf("drained backend %s exited uncleanly: %w", name, err))
			return
		}
		fmt.Fprintf(os.Stderr, "cdpfload: backend %s exited 0 after evacuating %d sessions\n", name, moved)
	case <-time.After(60 * time.Second):
		victim.cmd.Process.Kill()
		c.setErr(fmt.Errorf("drained backend %s did not exit within 60s", name))
	}
}

// busiestBackend reads the gateway's /cluster census.
func (c *clusterCtl) busiestBackend(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.gw.base+"/cluster", nil)
	if err != nil {
		return "", err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	var info struct {
		Sessions map[string]int `json:"sessions_per_backend"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return "", err
	}
	best, bestN := "", -1
	names := make([]string, 0, len(info.Sessions))
	for name := range info.Sessions {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if n := info.Sessions[name]; n > bestN {
			best, bestN = name, n
		}
	}
	if best == "" {
		return "", fmt.Errorf("empty census from /cluster")
	}
	return best, nil
}

// migrateViaGateway POSTs the explicit evacuation and returns how many
// sessions moved.
func (c *clusterCtl) migrateViaGateway(ctx context.Context, name string) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.gw.base+"/admin/migrate?backend="+name, nil)
	if err != nil {
		return 0, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(data)))
	}
	var rep struct {
		Moved  map[string]string `json:"moved"`
		Errors []string          `json:"errors"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return 0, err
	}
	if len(rep.Errors) > 0 {
		return len(rep.Moved), fmt.Errorf("migration errors: %s", strings.Join(rep.Errors, "; "))
	}
	return len(rep.Moved), nil
}

func (c *clusterCtl) setErr(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	c.mu.Unlock()
}

func (c *clusterCtl) failed() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

func (c *clusterCtl) drainedName() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.drained
}

func (c *clusterCtl) migratedCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.migrated
}

// stopAll shuts the gateway down first (no new routing), then every backend
// that is still running.
func (c *clusterCtl) stopAll() {
	procs := append([]*clusterProc{c.gw}, c.backends...)
	for _, p := range procs {
		if p == nil || p.cmd == nil || p.cmd.Process == nil {
			continue
		}
		name := c.drainedName()
		if p.name == name {
			continue // already reaped by drainBusiest
		}
		p.cmd.Process.Signal(os.Interrupt)
	}
	for _, p := range procs {
		if p == nil || p.cmd == nil || p.cmd.Process == nil || p.name == c.drainedName() {
			continue
		}
		done := make(chan error, 1)
		go func(p *clusterProc) { done <- p.cmd.Wait() }(p)
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			p.cmd.Process.Kill()
			p.cmd.Wait()
		}
	}
}
