package main

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// daemonCtl owns a cdpfd process the load generator launched itself: it
// boots the daemon on an ephemeral port, resolves the bound address through
// an addr-file, and can kill -9 and relaunch it mid-load (the crash-recovery
// drill -restart-after drives). The base URL changes across restarts — the
// drive loops re-read it through baseURL on every attempt.
type daemonCtl struct {
	argv     []string
	addrFile string

	mu       sync.Mutex
	cmd      *exec.Cmd
	base     string
	restarts int
	err      error // first restart failure; load run fails at the end
}

func newDaemonCtl(command string, dir string) (*daemonCtl, error) {
	argv := strings.Fields(command)
	if len(argv) == 0 {
		return nil, fmt.Errorf("-daemon command is empty")
	}
	return &daemonCtl{argv: argv, addrFile: filepath.Join(dir, "cdpfd.addr")}, nil
}

// start boots the daemon and blocks until /healthz reports "ready" (which
// includes waiting out crash recovery on a restart).
func (d *daemonCtl) start(ctx context.Context) error {
	os.Remove(d.addrFile)
	argv := append(append([]string(nil), d.argv...),
		"-addr", "127.0.0.1:0", "-addr-file", d.addrFile)
	cmd := exec.Command(argv[0], argv[1:]...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("starting daemon: %w", err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		if ctx.Err() != nil {
			cmd.Process.Kill()
			cmd.Wait()
			return ctx.Err()
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			cmd.Wait()
			return fmt.Errorf("daemon never became ready")
		}
		if base, ok := readyBase(d.addrFile); ok {
			d.mu.Lock()
			d.cmd, d.base = cmd, base
			d.mu.Unlock()
			return nil
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// readyBase resolves the addr-file and confirms /healthz says "ready".
func readyBase(addrFile string) (string, bool) {
	data, err := os.ReadFile(addrFile)
	if err != nil || len(data) == 0 {
		return "", false
	}
	base := "http://" + strings.TrimSpace(string(data))
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		return "", false
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 64))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || strings.TrimSpace(string(body)) != "ready" {
		return "", false
	}
	return base, true
}

// baseURL is the daemon's current address; it changes across restarts.
func (d *daemonCtl) baseURL() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.base
}

// killRestart SIGKILLs the daemon — a real crash, no drain, no snapshots —
// and boots a replacement on the same data directory.
func (d *daemonCtl) killRestart(ctx context.Context) {
	d.mu.Lock()
	cmd := d.cmd
	d.restarts++
	d.mu.Unlock()
	if cmd == nil || cmd.Process == nil {
		d.setErr(fmt.Errorf("restart requested but no daemon is running"))
		return
	}
	fmt.Fprintln(os.Stderr, "cdpfload: kill -9 on the daemon, restarting")
	cmd.Process.Kill()
	cmd.Wait()
	if err := d.start(ctx); err != nil {
		d.setErr(fmt.Errorf("restarting daemon: %w", err))
	}
}

func (d *daemonCtl) setErr(err error) {
	d.mu.Lock()
	if d.err == nil {
		d.err = err
	}
	d.mu.Unlock()
}

// failed reports the first restart error, if any.
func (d *daemonCtl) failed() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.err
}

// restartCount reports how many kill+restart cycles ran.
func (d *daemonCtl) restartCount() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.restarts
}

// awaitReady blocks until the (possibly restarted) daemon answers healthz
// "ready" at its current address — the drive loops call it before resuming
// after a transient failure.
func (d *daemonCtl) awaitReady(ctx context.Context, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		if err := d.failed(); err != nil {
			return err
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("daemon not ready within %v", timeout)
		}
		if _, ok := readyBase(d.addrFile); ok {
			return nil
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// eventTrigger fires its action once, after the fleet has observed
// `threshold` first-time estimate events — the scheduling mechanism behind
// both -restart-after (kill the managed daemon) and -drain-after (evacuate
// the busiest cluster backend). Replayed records after a recovery must not
// re-arm anything, so only first receipts count. Nil-safe: a nil trigger
// means no fault injection.
type eventTrigger struct {
	threshold int64
	action    func()
	count     atomic.Int64
	fired     atomic.Bool
}

func (r *eventTrigger) onEvent() {
	if r == nil {
		return
	}
	if r.count.Add(1) >= r.threshold && r.fired.CompareAndSwap(false, true) {
		go r.action()
	}
}

// stop shuts the daemon down gracefully (SIGTERM, wait).
func (d *daemonCtl) stop() error {
	d.mu.Lock()
	cmd := d.cmd
	d.mu.Unlock()
	if cmd == nil || cmd.Process == nil {
		return nil
	}
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		cmd.Process.Kill()
		cmd.Wait()
		return err
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		return err
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		return fmt.Errorf("daemon did not exit on SIGTERM")
	}
}
