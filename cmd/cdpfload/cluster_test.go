package main

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/benchfmt"
	"repro/internal/chaos"
)

// buildBinary compiles one of the repo's commands into dir.
func buildBinary(t *testing.T, dir, name, pkg string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-o", bin, pkg)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building %s: %v\n%s", pkg, err, out)
	}
	return bin
}

// TestClusterCrashByteIdentity is the chaos tier's headline drill: a
// 3-backend cluster behind the gateway, the busiest backend SIGKILLed
// mid-run with nothing evacuated, relaunched by the supervisor on its own
// data directory at the same address. The run fails inside runCluster unless
// WAL recovery brought every session back, the gateway parked (rather than
// 502d) the victim's traffic — zero client-visible 5xx for its sessions —
// and every trace, crash-spanning or not, is byte-identical to its offline
// twin (-verify).
func TestClusterCrashByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a process fleet; skipped in -short")
	}
	dir := t.TempDir()
	cdpfd := buildBinary(t, dir, "cdpfd", "repro/cmd/cdpfd")
	cdpfgw := buildBinary(t, dir, "cdpfgw", "repro/cmd/cdpfgw")

	o := options{
		sessions:   6,
		steps:      10,
		density:    10,
		seed:       11,
		window:     2,
		verify:     true,
		stepWait:   30 * time.Second,
		cluster:    3,
		daemon:     cdpfd + " -fsync interval -snapshot-every 4 -shards 2",
		gatewayCmd: cdpfgw + " -probe-every 100ms -probe-flap 2",
		killAfter:  20,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()
	var buf bytes.Buffer
	if err := run(ctx, o, &buf); err != nil {
		t.Fatalf("cluster crash drill: %v\noutput:\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{
		"killed b", // which backend varies with session placement
		"recovered in",
		"zero client-visible 5xx",
		"BenchmarkClusterRecovery",
		"BenchmarkClusterParkLatencyP99",
		"BenchmarkClusterRetries",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// The chaos bench block must round-trip through the benchdiff parser.
	ms, _, err := benchfmt.ParseBench(strings.NewReader(out))
	if err != nil {
		t.Fatalf("bench text unparseable: %v", err)
	}
	if ms["BenchmarkClusterRecovery"].NsPerOp <= 0 {
		t.Errorf("recovery time not reported: %+v", ms)
	}
}

func TestClusterFlagValidation(t *testing.T) {
	ctx := context.Background()
	base := options{sessions: 2, steps: 2, density: 10, seed: 1, window: 1,
		cluster: 3, daemon: "cdpfd", gatewayCmd: "cdpfgw"}

	both := base
	both.drainAfter, both.killAfter = 3, 3
	if err := run(ctx, both, io.Discard); err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Errorf("drain+kill accepted: %v", err)
	}

	high := base
	high.killAfter = 100 // >= sessions*(steps+1)
	if err := run(ctx, high, io.Discard); err == nil || !strings.Contains(err.Error(), "must be below") {
		t.Errorf("oversized -kill-after accepted: %v", err)
	}

	badSched := base
	badSched.chaos = "latency/delay=oops"
	if err := run(ctx, badSched, io.Discard); err == nil || !strings.Contains(err.Error(), "-chaos") {
		t.Errorf("bad -chaos schedule accepted: %v", err)
	}

	solo := options{sessions: 2, steps: 2, density: 10, seed: 1, window: 1, killAfter: 3}
	if err := run(ctx, solo, io.Discard); err == nil || !strings.Contains(err.Error(), "-cluster") {
		t.Errorf("-kill-after without -cluster accepted: %v", err)
	}
}

func TestScrapeGatewayStats(t *testing.T) {
	body := strings.Join([]string{
		`# HELP cdpfgw_route_retries_total retried proxy attempts`,
		`cdpfgw_route_retries_total 17`,
		`cdpfgw_park_latency_seconds_bucket{le="0.0001"} 0`,
		`cdpfgw_park_latency_seconds_bucket{le="0.1024"} 3`,
		`cdpfgw_park_latency_seconds_bucket{le="0.2048"} 9`,
		`cdpfgw_park_latency_seconds_bucket{le="+Inf"} 10`,
		`cdpfgw_park_latency_seconds_count 10`,
	}, "\n")
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(body))
	}))
	defer ts.Close()
	gs, err := scrapeGatewayStats(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if gs.retries != 17 {
		t.Errorf("retries = %d, want 17", gs.retries)
	}
	// rank = ceil(0.99*10) = 10, which lands in +Inf; the largest finite
	// bound is reported instead.
	if want := time.Duration(0.2048 * float64(time.Second)); gs.parkP99 != want {
		t.Errorf("parkP99 = %v, want %v", gs.parkP99, want)
	}
}

func TestScrapeGatewayStatsEmptyHistogram(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("cdpfgw_route_retries_total 0\ncdpfgw_park_latency_seconds_bucket{le=\"+Inf\"} 0\n"))
	}))
	defer ts.Close()
	gs, err := scrapeGatewayStats(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if gs.retries != 0 || gs.parkP99 != 0 {
		t.Errorf("empty scrape produced %+v", gs)
	}
}

func TestFormatFaultTotals(t *testing.T) {
	if got := formatFaultTotals(nil); got != "none" {
		t.Errorf("empty totals formatted as %q", got)
	}
	got := formatFaultTotals(map[chaos.Kind]uint64{
		chaos.KindReset:   3,
		chaos.KindLatency: 7,
	})
	if got != "latency=7 reset=3" {
		t.Errorf("totals formatted as %q", got)
	}
}
