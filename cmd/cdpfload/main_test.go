package main

import (
	"bytes"
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/benchfmt"
	"repro/internal/serve"
)

// startDaemon boots an in-process cdpfd stack (manager + HTTP server) the way
// cmd/cdpfd wires it.
func startDaemon(t *testing.T) (*httptest.Server, *serve.Manager) {
	t.Helper()
	met := serve.NewMetrics(nil)
	mgr := serve.NewManager(serve.ManagerConfig{Shards: 2, Metrics: met})
	met.SetQueueDepthFunc(mgr.QueueDepth)
	ts := httptest.NewServer(serve.NewServer(mgr, met))
	t.Cleanup(func() { ts.Close(); mgr.Drain() })
	return ts, mgr
}

func TestRunDrivesSessionsAndWritesBaseline(t *testing.T) {
	ts, _ := startDaemon(t)
	benchPath := filepath.Join(t.TempDir(), "BENCH_serve.json")
	o := options{
		addr:      ts.URL,
		sessions:  3,
		steps:     5,
		density:   10,
		seed:      7,
		window:    2,
		verify:    true, // every served record must match the offline twin
		benchJSON: benchPath,
		note:      "test run",
		stepWait:  30 * time.Second,
	}
	var buf bytes.Buffer
	if err := run(context.Background(), o, &buf); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{
		"3 sessions x 6 iterations",
		"BenchmarkServeStepLatencyP50",
		"BenchmarkServeStepLatencyP99",
		"BenchmarkServeThroughput",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}

	// The bench block must be parseable by the same parser benchdiff uses.
	ms, _, err := benchfmt.ParseBench(strings.NewReader(out))
	if err != nil {
		t.Fatalf("bench text unparseable: %v", err)
	}
	if ms["BenchmarkServeThroughput"].JobsPerSec <= 0 {
		t.Errorf("throughput not reported: %+v", ms)
	}

	b, err := benchfmt.ReadBaseline(benchPath)
	if err != nil {
		t.Fatal(err)
	}
	if b.Schema != "bench-serve/v1" || len(b.Baseline) != 3 || b.Note != "test run" {
		t.Errorf("unexpected baseline: %+v", b)
	}
}

// TestRunWithSpecCell drives sessions configured from a spec/v1 cell file —
// a composition (bursty loss + mid-run fail-stops) the flag form cannot
// express — with offline-twin verification on, so the served traces are
// checked byte-for-byte against the cell's offline runs.
func TestRunWithSpecCell(t *testing.T) {
	ts, _ := startDaemon(t)
	specPath := filepath.Join(t.TempDir(), "cell.json")
	if err := os.WriteFile(specPath, []byte(`{
  "version": "spec/v1",
  "base": {"algo": "cdpf", "density": 10, "loss": 0.3, "burst": 3, "failfrac": 0.2, "steps": 5}
}`), 0o644); err != nil {
		t.Fatal(err)
	}
	o := options{
		addr: ts.URL, sessions: 2, spec: specPath, seed: 7,
		window: 2, verify: true, stepWait: 30 * time.Second,
	}
	var buf bytes.Buffer
	if err := run(context.Background(), o, &buf); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "2 sessions x 6 iterations") {
		t.Errorf("spec cell's steps not picked up:\n%s", buf.String())
	}
	// A non-serveable cell (baseline algo) fails the run.
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{
  "version": "spec/v1",
  "base": {"algo": "sdpf", "density": 10}
}`), 0o644); err != nil {
		t.Fatal(err)
	}
	o.spec = bad
	if err := run(context.Background(), o, &buf); err == nil {
		t.Fatal("non-serveable cell accepted")
	}
}

func TestRunStrictLockstepWindowOne(t *testing.T) {
	ts, _ := startDaemon(t)
	o := options{
		addr: ts.URL, sessions: 1, steps: 3, density: 10, seed: 3,
		window: 1, verify: true, stepWait: 30 * time.Second,
	}
	var buf bytes.Buffer
	if err := run(context.Background(), o, &buf); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, buf.String())
	}
}

func TestRunReportsServerErrors(t *testing.T) {
	o := options{
		addr:     "127.0.0.1:1", // nothing listens on the reserved port
		sessions: 1, steps: 2, density: 10, seed: 1, window: 1,
		stepWait: time.Second,
	}
	var buf bytes.Buffer
	if err := run(context.Background(), o, &buf); err == nil {
		t.Fatal("want error against dead server")
	}
}
