package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunRejectsUnknownAlgo(t *testing.T) {
	if err := run("nope", 20, 1, 10, 0, 0, 0, 1, 0, false, ""); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestRunEveryAlgo(t *testing.T) {
	for _, algo := range []string{"cdpf", "cdpf-ne", "cpf", "dpf", "sdpf", "ekf"} {
		if err := run(algo, 10, 31, 10, 0, 0, 0, 1, 0, false, ""); err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
	}
}

func TestRunWithFaultInjection(t *testing.T) {
	if err := run("cdpf", 10, 31, 10, 0.2, 0.1, 0, 1, 0, false, ""); err != nil {
		t.Fatal(err)
	}
	if err := run("cdpf", 10, 31, 10, 2, 0, 0, 1, 0, false, ""); err == nil {
		t.Fatal("failure fraction above 1 accepted")
	}
}

func TestRunWithLossAndFailStops(t *testing.T) {
	// Bursty loss plus mid-run fail-stops must run to completion for both
	// the hardened CDPF path and a baseline.
	for _, algo := range []string{"cdpf", "sdpf"} {
		if err := run(algo, 10, 31, 10, 0, 0, 0.4, 3, 0.2, false, ""); err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
	}
	// iid loss (burst <= 1) exercises the other loss branch.
	if err := run("cdpf", 10, 31, 10, 0, 0, 0.3, 1, 0, false, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunWritesTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.csv")
	if err := run("cdpf", 10, 31, 10, 0, 0, 0, 1, 0, false, path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 12 { // header + 11 iterations
		t.Fatalf("trace has %d lines", len(lines))
	}
}

func TestRunRejectsInvalidFaultFlags(t *testing.T) {
	if err := run("cdpf", 10, 31, 10, 0, 0, 1.5, 1, 0, false, ""); err == nil {
		t.Fatal("loss rate above 1 accepted")
	}
	if err := run("cdpf", 10, 31, 10, 0, 0, 0, 1, 1.2, false, ""); err == nil {
		t.Fatal("failfrac above 1 accepted")
	}
	if err := run("cdpf", 10, 31, 10, 0, 0, 0.8, 3, 0, false, ""); err == nil {
		t.Fatal("unreachable loss/burst combination accepted")
	}
}
