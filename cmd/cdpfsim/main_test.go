package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// opts builds the default test options (cdpf, density 10, 10 steps).
func opts(algo string) options {
	return options{algo: algo, density: 10, seed: 31, steps: 10, burst: 1, sfKind: "stuck"}
}

func TestRunRejectsUnknownAlgo(t *testing.T) {
	if err := run(context.Background(), opts("nope")); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestRunEveryAlgo(t *testing.T) {
	for _, algo := range []string{"cdpf", "cdpf-ne", "cpf", "dpf", "sdpf", "ekf"} {
		if err := run(context.Background(), opts(algo)); err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
	}
}

func TestRunWithFaultInjection(t *testing.T) {
	o := opts("cdpf")
	o.failFrac, o.sleepFr = 0.2, 0.1
	if err := run(context.Background(), o); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithLossAndFailStops(t *testing.T) {
	// Bursty loss plus mid-run fail-stops must run to completion for both
	// the hardened CDPF path and a baseline.
	for _, algo := range []string{"cdpf", "sdpf"} {
		o := opts(algo)
		o.loss, o.burst, o.failMid = 0.4, 3, 0.2
		if err := run(context.Background(), o); err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
	}
	// iid loss (burst <= 1) exercises the other loss branch.
	o := opts("cdpf")
	o.loss = 0.3
	if err := run(context.Background(), o); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithSensorFaults(t *testing.T) {
	// Every fault kind must run to completion undefended and defended.
	for _, kind := range []string{"stuck", "drift", "noise", "outlier", "byzantine"} {
		for _, defend := range []bool{false, true} {
			o := opts("cdpf")
			o.sfKind, o.sfFrac, o.defend = kind, 0.2, defend
			if err := run(context.Background(), o); err != nil {
				t.Fatalf("%s defend=%v: %v", kind, defend, err)
			}
		}
	}
	// Baselines consume the same corrupted observations.
	o := opts("sdpf")
	o.sfFrac = 0.2
	if err := run(context.Background(), o); err != nil {
		t.Fatal(err)
	}
}

func TestRunWritesTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.csv")
	o := opts("cdpf")
	o.traceOut = path
	if err := run(context.Background(), o); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 12 { // header + 11 iterations
		t.Fatalf("trace has %d lines", len(lines))
	}
}

// writeSpec drops a spec/v1 document into a temp dir and returns its path.
func writeSpec(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRunSpecMatchesFlags is the spec-vs-flags byte-identity contract: the
// same scenario spelled as a spec file and as CLI flags must write identical
// trace CSVs, because both routes resolve to the same spec cell.
func TestRunSpecMatchesFlags(t *testing.T) {
	path := writeSpec(t, "twin.json", `{
  "version": "spec/v1",
  "base": {"algo": "cdpf", "density": 10, "seed": 31, "loss": 0.3, "burst": 3}
}`)
	specTrace := filepath.Join(t.TempDir(), "spec.csv")
	o := options{spec: path, traceOut: specTrace}
	if err := run(context.Background(), o); err != nil {
		t.Fatal(err)
	}

	flagTrace := filepath.Join(t.TempDir(), "flags.csv")
	fo := opts("cdpf")
	fo.loss, fo.burst = 0.3, 3
	fo.traceOut = flagTrace
	if err := run(context.Background(), fo); err != nil {
		t.Fatal(err)
	}

	a, err := os.ReadFile(specTrace)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(flagTrace)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("spec-driven trace differs from flag-driven trace")
	}
}

func TestRunSpecCellSelection(t *testing.T) {
	path := writeSpec(t, "grid.json", `{
  "version": "spec/v1",
  "base": {"algo": "cdpf", "density": 5, "burst": 3},
  "grid": {"loss": [0, 0.3], "seed": [31, 62]}
}`)
	// A gridded spec needs an explicit #cell.
	if err := run(context.Background(), options{spec: path}); err == nil {
		t.Fatal("gridded spec without a cell fragment accepted")
	}
	if err := run(context.Background(), options{spec: path + "#loss=0.3,seed=62"}); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), options{spec: path + "#loss=1,seed=1"}); err == nil {
		t.Fatal("unknown cell accepted")
	}
}

func TestRunRejectsInvalidFlags(t *testing.T) {
	// Validation lives in spec.Validate (the single path shared with spec
	// files, cdpfmatrix, and benchtab); errors name the spec axis, which is
	// the flag name without the dash.
	cases := []struct {
		name string
		mut  func(*options)
		want string
	}{
		{"fail above 1", func(o *options) { o.failFrac = 2 }, "fail"},
		{"fail negative", func(o *options) { o.failFrac = -0.1 }, "fail"},
		{"sleep above 1", func(o *options) { o.sleepFr = 1.5 }, "sleep"},
		{"loss at 1", func(o *options) { o.loss = 1 }, "loss"},
		{"loss above 1", func(o *options) { o.loss = 1.5 }, "loss"},
		{"loss negative", func(o *options) { o.loss = -0.2 }, "loss"},
		{"failfrac above 1", func(o *options) { o.failMid = 1.2 }, "failfrac"},
		{"unreachable loss/burst", func(o *options) { o.loss, o.burst = 0.8, 3 }, "burst"},
		{"sfaultfrac above 1", func(o *options) { o.sfFrac = 1.01 }, "sfaultfrac"},
		{"sfaultfrac negative", func(o *options) { o.sfFrac = -0.3 }, "sfaultfrac"},
		{"sfaultmag negative", func(o *options) { o.sfMag = -1 }, "sfaultmag"},
		{"unknown sfault kind", func(o *options) { o.sfKind = "wobbly" }, "sfault"},
		{"defend on baseline", func(o *options) { o.algo, o.defend = "sdpf", true }, "defend"},
	}
	for _, c := range cases {
		o := opts("cdpf")
		c.mut(&o)
		err := run(context.Background(), o)
		if err == nil {
			t.Fatalf("%s: accepted", c.name)
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Fatalf("%s: error %q does not name %s", c.name, err, c.want)
		}
		if strings.Contains(err.Error(), "\n") {
			t.Fatalf("%s: error %q is not one line", c.name, err)
		}
	}
}
