package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunRejectsUnknownAlgo(t *testing.T) {
	if err := run("nope", 20, 1, 10, 0, 0, false, ""); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestRunEveryAlgo(t *testing.T) {
	for _, algo := range []string{"cdpf", "cdpf-ne", "cpf", "dpf", "sdpf", "ekf"} {
		if err := run(algo, 10, 31, 10, 0, 0, false, ""); err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
	}
}

func TestRunWithFaultInjection(t *testing.T) {
	if err := run("cdpf", 10, 31, 10, 0.2, 0.1, false, ""); err != nil {
		t.Fatal(err)
	}
	if err := run("cdpf", 10, 31, 10, 2, 0, false, ""); err == nil {
		t.Fatal("failure fraction above 1 accepted")
	}
}

func TestRunWritesTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.csv")
	if err := run("cdpf", 10, 31, 10, 0, 0, false, path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 12 { // header + 11 iterations
		t.Fatalf("trace has %d lines", len(lines))
	}
}
