package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// opts builds the default test options (cdpf, density 10, 10 steps).
func opts(algo string) options {
	return options{algo: algo, density: 10, seed: 31, steps: 10, burst: 1, sfKind: "stuck"}
}

func TestRunRejectsUnknownAlgo(t *testing.T) {
	if err := run(context.Background(), opts("nope")); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestRunEveryAlgo(t *testing.T) {
	for _, algo := range []string{"cdpf", "cdpf-ne", "cpf", "dpf", "sdpf", "ekf"} {
		if err := run(context.Background(), opts(algo)); err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
	}
}

func TestRunWithFaultInjection(t *testing.T) {
	o := opts("cdpf")
	o.failFrac, o.sleepFr = 0.2, 0.1
	if err := run(context.Background(), o); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithLossAndFailStops(t *testing.T) {
	// Bursty loss plus mid-run fail-stops must run to completion for both
	// the hardened CDPF path and a baseline.
	for _, algo := range []string{"cdpf", "sdpf"} {
		o := opts(algo)
		o.loss, o.burst, o.failMid = 0.4, 3, 0.2
		if err := run(context.Background(), o); err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
	}
	// iid loss (burst <= 1) exercises the other loss branch.
	o := opts("cdpf")
	o.loss = 0.3
	if err := run(context.Background(), o); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithSensorFaults(t *testing.T) {
	// Every fault kind must run to completion undefended and defended.
	for _, kind := range []string{"stuck", "drift", "noise", "outlier", "byzantine"} {
		for _, defend := range []bool{false, true} {
			o := opts("cdpf")
			o.sfKind, o.sfFrac, o.defend = kind, 0.2, defend
			if err := run(context.Background(), o); err != nil {
				t.Fatalf("%s defend=%v: %v", kind, defend, err)
			}
		}
	}
	// Baselines consume the same corrupted observations.
	o := opts("sdpf")
	o.sfFrac = 0.2
	if err := run(context.Background(), o); err != nil {
		t.Fatal(err)
	}
}

func TestRunWritesTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.csv")
	o := opts("cdpf")
	o.traceOut = path
	if err := run(context.Background(), o); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 12 { // header + 11 iterations
		t.Fatalf("trace has %d lines", len(lines))
	}
}

func TestRunRejectsInvalidFlags(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*options)
		want string
	}{
		{"fail above 1", func(o *options) { o.failFrac = 2 }, "-fail"},
		{"fail negative", func(o *options) { o.failFrac = -0.1 }, "-fail"},
		{"sleep above 1", func(o *options) { o.sleepFr = 1.5 }, "-sleep"},
		{"loss at 1", func(o *options) { o.loss = 1 }, "-loss"},
		{"loss above 1", func(o *options) { o.loss = 1.5 }, "-loss"},
		{"loss negative", func(o *options) { o.loss = -0.2 }, "-loss"},
		{"failfrac above 1", func(o *options) { o.failMid = 1.2 }, "-failfrac"},
		{"unreachable loss/burst", func(o *options) { o.loss, o.burst = 0.8, 3 }, "-burst"},
		{"sfaultfrac above 1", func(o *options) { o.sfFrac = 1.01 }, "-sfaultfrac"},
		{"sfaultfrac negative", func(o *options) { o.sfFrac = -0.3 }, "-sfaultfrac"},
		{"sfaultmag negative", func(o *options) { o.sfMag = -1 }, "-sfaultmag"},
		{"unknown sfault kind", func(o *options) { o.sfKind = "wobbly" }, "-sfault"},
		{"defend on baseline", func(o *options) { o.algo, o.defend = "sdpf", true }, "-defend"},
	}
	for _, c := range cases {
		o := opts("cdpf")
		c.mut(&o)
		err := run(context.Background(), o)
		if err == nil {
			t.Fatalf("%s: accepted", c.name)
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Fatalf("%s: error %q does not name %s", c.name, err, c.want)
		}
		if strings.Contains(err.Error(), "\n") {
			t.Fatalf("%s: error %q is not one line", c.name, err)
		}
	}
}
