// Command cdpfsim runs one tracking scenario with a chosen algorithm and
// prints a per-iteration trace plus the run summary — the quickest way to
// watch CDPF work.
//
// Usage:
//
//	cdpfsim [-algo cdpf|cdpf-ne|cpf|sdpf] [-density D] [-seed S]
//	        [-steps N] [-fail F] [-sleep F] [-loss P] [-burst L]
//	        [-failfrac F] [-v]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/mathx"
	"repro/internal/metrics"
	"repro/internal/scenario"
	"repro/internal/trace"
	"repro/internal/wsn"
)

func main() {
	var (
		algoName = flag.String("algo", "cdpf", "algorithm: cdpf, cdpf-ne, cpf, dpf, sdpf, ekf")
		density  = flag.Float64("density", 20, "node density (nodes per 100 m²)")
		seed     = flag.Uint64("seed", 31, "master random seed")
		steps    = flag.Int("steps", 10, "filter iterations (paper: 10 = 50 s at Δt 5 s)")
		failFrac = flag.Float64("fail", 0, "fraction of nodes failed at deployment")
		sleepFr  = flag.Float64("sleep", 0, "fraction of nodes in unanticipated sleep")
		loss     = flag.Float64("loss", 0, "link packet-loss rate in [0,1)")
		burst    = flag.Float64("burst", 1, "mean loss-burst length in filter iterations; >1 selects Gilbert–Elliott bursty loss")
		failMid  = flag.Float64("failfrac", 0, "fraction of nodes fail-stopped mid-run (fault injection)")
		verbose  = flag.Bool("v", false, "print a per-iteration trace")
		traceOut = flag.String("trace", "", "write a per-iteration CSV trace to this file")
	)
	flag.Parse()

	if err := run(*algoName, *density, *seed, *steps, *failFrac, *sleepFr, *loss, *burst, *failMid, *verbose, *traceOut); err != nil {
		fmt.Fprintln(os.Stderr, "cdpfsim:", err)
		os.Exit(1)
	}
}

func run(algoName string, density float64, seed uint64, steps int, failFrac, sleepFr, loss, burst, failMid float64, verbose bool, traceOut string) error {
	var algo experiments.Algo
	if algoName == "ekf" {
		algo = "ekf"
	} else {
		var err error
		algo, err = experiments.ParseAlgo(algoName)
		if err != nil {
			return err
		}
	}
	p := scenario.Default(density, seed)
	p.Steps = steps
	p.FailFraction = failFrac
	p.SleepFraction = sleepFr
	sc, err := scenario.Build(p)
	if err != nil {
		return err
	}
	fmt.Printf("field %gx%g m, %d nodes (density %.1f/100m²), rs=%g m, rc=%g m, %d filter iterations\n",
		sc.Net.Cfg.Width, sc.Net.Cfg.Height, sc.Net.Len(), sc.Net.Density(),
		sc.Net.Cfg.SensingRadius, sc.Net.Cfg.CommRadius, sc.Iterations())

	// Fault injection: link loss and a mid-run fail-stop schedule.
	if loss < 0 || loss >= 1 {
		return fmt.Errorf("-loss %v outside [0, 1)", loss)
	}
	if failMid < 0 || failMid > 1 {
		return fmt.Errorf("-failfrac %v outside [0, 1]", failMid)
	}
	if loss > 0 && burst > 1 && loss/(1-loss) > burst {
		return fmt.Errorf("-loss %v unreachable with -burst %v (needs loss/(1-loss) <= burst)", loss, burst)
	}
	if loss > 0 {
		if burst > 1 {
			sc.Net.SetBurstLoss(loss, burst, seed^0xfa117)
			fmt.Printf("link loss: %.0f%% bursty (mean burst %.1f iterations)\n", 100*loss, burst)
		} else {
			sc.Net.SetLossRate(loss, seed^0xfa117)
			fmt.Printf("link loss: %.0f%% iid\n", 100*loss)
		}
	}
	faults := wsn.NewFaultSchedule()
	if failMid > 0 {
		mid := sc.Filter.Times[sc.Iterations()/2]
		victims := wsn.RandomNodes(sc.Net, failMid, sc.RNG(70))
		faults.FailStopAt(mid, victims)
		fmt.Printf("fault injection: %d nodes fail-stop at t=%g s\n", len(victims), mid)
	}
	hardened := loss > 0 || failMid > 0

	var errs []float64
	var resilTr *core.Tracker
	step := func(k int) (mathx.Vec2, int, bool) { return mathx.Vec2{}, -1, false }

	switch algo {
	case experiments.AlgoCDPF, experiments.AlgoCDPFNE:
		cfg := core.DefaultConfig(algo == experiments.AlgoCDPFNE)
		if hardened {
			cfg = core.ResilientConfig(algo == experiments.AlgoCDPFNE)
		}
		tr, err := core.NewTracker(sc.Net, cfg)
		if err != nil {
			return err
		}
		resilTr = tr
		rng := sc.RNG(1)
		step = func(k int) (mathx.Vec2, int, bool) {
			r := tr.Step(sc.Observations(k), rng)
			return r.Estimate, k - 1, r.EstimateValid && k >= 1
		}
	case experiments.AlgoCPF:
		c, err := baseline.NewCPF(sc.Net, baseline.DefaultCPFConfig())
		if err != nil {
			return err
		}
		rng := sc.RNG(2)
		step = func(k int) (mathx.Vec2, int, bool) {
			est, ok := c.Step(sc.Observations(k), rng)
			return est, k, ok
		}
	case experiments.AlgoSDPF:
		s, err := baseline.NewSDPF(sc.Net, baseline.DefaultSDPFConfig())
		if err != nil {
			return err
		}
		rng := sc.RNG(3)
		step = func(k int) (mathx.Vec2, int, bool) {
			est, ok := s.Step(sc.Observations(k), rng)
			return est, k, ok
		}
	case experiments.AlgoDPF:
		d, err := baseline.NewDPF(sc.Net, baseline.DefaultDPFConfig())
		if err != nil {
			return err
		}
		rng := sc.RNG(4)
		step = func(k int) (mathx.Vec2, int, bool) {
			est, ok := d.Step(sc.Observations(k), rng)
			return est, k, ok
		}
	case "ekf":
		e, err := baseline.NewEKFTracker(sc.Net, baseline.DefaultEKFConfig())
		if err != nil {
			return err
		}
		rng := sc.RNG(5)
		step = func(k int) (mathx.Vec2, int, bool) {
			est, ok := e.Step(sc.Observations(k), rng)
			return est, k, ok
		}
	}

	rec := trace.New(string(algo), density, seed)
	valid := make([]bool, 0, sc.Iterations())
	for k := 0; k < sc.Iterations(); k++ {
		faults.ApplyUntil(sc.Net, sc.Filter.Times[k])
		before := sc.Net.Stats.Snapshot()
		detectors := len(sc.DetectingNodes(k))
		est, estFor, ok := step(k)
		valid = append(valid, ok)
		d := sc.Net.Stats.Diff(before)
		r := trace.Record{
			K: k, Time: sc.Filter.Times[k],
			TruthX: sc.Truth(k).X, TruthY: sc.Truth(k).Y,
			Detectors: detectors, Holders: -1,
			MsgsDelta: d.TotalMsgs(), BytesDelta: d.TotalBytes(),
		}
		if ok && estFor >= 0 {
			e := est.Dist(sc.Truth(estFor))
			errs = append(errs, e)
			r.HaveEst, r.EstForK, r.EstX, r.EstY, r.Err = true, estFor, est.X, est.Y, e
			if verbose {
				fmt.Printf("k=%2d truth=%v est[k=%d]=%v err=%.2f m, %d msgs / %d B this iteration\n",
					k, sc.Truth(k), estFor, est, e, d.TotalMsgs(), d.TotalBytes())
			}
		} else if verbose {
			fmt.Printf("k=%2d truth=%v (no estimate), %d msgs / %d B\n",
				k, sc.Truth(k), d.TotalMsgs(), d.TotalBytes())
		}
		rec.Add(r)
	}
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := rec.WriteCSV(f); err != nil {
			return err
		}
		fmt.Printf("trace written to %s (%d iterations)\n", traceOut, rec.Len())
	}

	fmt.Printf("\n%s: %d estimates, RMSE %.2f m, max error %.2f m\n",
		algo, len(errs), mathx.RMS(errs), maxOf(errs))
	fmt.Printf("communication: %s (total %d msgs / %d bytes)\n",
		sc.Net.Stats, sc.Net.Stats.TotalMsgs(), sc.Net.Stats.TotalBytes())
	if hardened {
		episodes, reacq, locked := metrics.TrackEpisodes(valid)
		fmt.Printf("track loss: %d episodes, locked %.0f%% of the time since acquisition",
			episodes, 100*locked)
		if len(reacq) > 0 {
			fmt.Printf(", mean reacquire %.1f iterations", mathx.Mean(reacq))
		}
		fmt.Println()
		if resilTr != nil {
			rs := resilTr.Resilience()
			fmt.Printf("degradation: %d rebroadcasts (%d saved a particle), %d compensated totals, %d failed nodes at end\n",
				rs.Rebroadcasts, rs.RebroadcastSaves, rs.Compensated, faults.DownCount())
		}
	}
	return nil
}

func maxOf(xs []float64) float64 {
	m := 0.0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
