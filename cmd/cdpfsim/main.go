// Command cdpfsim runs one tracking scenario with a chosen algorithm and
// prints a per-iteration trace plus the run summary — the quickest way to
// watch CDPF work.
//
// Usage:
//
//	cdpfsim [-algo cdpf|cdpf-ne|cpf|sdpf] [-density D] [-seed S]
//	        [-steps N] [-fail F] [-sleep F] [-loss P] [-burst L]
//	        [-failfrac F] [-sfault stuck|drift|noise|outlier|byzantine]
//	        [-sfaultfrac F] [-sfaultmag M] [-defend] [-v]
//	        [-cpuprofile FILE] [-memprofile FILE] [-exectrace FILE]
//	cdpfsim -spec FILE[#CELL] [-trace FILE] [-v]
//	cdpfsim -replay-dir DIR [-replay-session ID] [-trace FILE] [-v]
//
// (-trace writes the per-iteration CSV trace; the runtime execution trace is
// -exectrace.)
//
// The scenario flags and -spec are two spellings of the same thing: the
// flags assemble a spec/v1 cell in memory, and -spec loads one from disk
// (FILE#CELL names one cell of a gridded spec). Both run through the same
// engine (internal/experiments.RunCell), so a spec-driven run is
// byte-identical to its flag-driven twin — and to the same cell executed by
// cdpfmatrix.
//
// Replay mode re-runs a production cdpfd session offline from its durability
// directory: the write-ahead log holds the session spec and every admitted
// observation batch, which is everything the deterministic tracker needs to
// reproduce the served trace bit for bit (see internal/serve.Replay). With no
// -replay-session, the sessions found in the WAL are listed.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/durable"
	"repro/internal/experiments"
	"repro/internal/mathx"
	"repro/internal/prof"
	"repro/internal/serve"
	"repro/internal/spec"
	"repro/internal/trace"
	"repro/internal/version"
)

// scenarioFlags are the flag names that conflict with -spec: each sets an
// axis the spec file already owns.
var scenarioFlags = map[string]bool{
	"algo": true, "density": true, "seed": true, "steps": true,
	"fail": true, "sleep": true, "loss": true, "burst": true, "failfrac": true,
	"sfault": true, "sfaultfrac": true, "sfaultmag": true, "defend": true,
}

func main() {
	var o options
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.StringVar(&o.algo, "algo", "cdpf", "algorithm: cdpf, cdpf-ne, cpf, dpf, sdpf, ekf")
	flag.Float64Var(&o.density, "density", 20, "node density (nodes per 100 m²)")
	flag.Uint64Var(&o.seed, "seed", 31, "master random seed")
	flag.IntVar(&o.steps, "steps", 10, "filter iterations (paper: 10 = 50 s at Δt 5 s)")
	flag.Float64Var(&o.failFrac, "fail", 0, "fraction of nodes failed at deployment")
	flag.Float64Var(&o.sleepFr, "sleep", 0, "fraction of nodes in unanticipated sleep")
	flag.Float64Var(&o.loss, "loss", 0, "link packet-loss rate in [0,1)")
	flag.Float64Var(&o.burst, "burst", 1, "mean loss-burst length in filter iterations; >1 selects Gilbert–Elliott bursty loss")
	flag.Float64Var(&o.failMid, "failfrac", 0, "fraction of nodes fail-stopped mid-run (fault injection)")
	flag.StringVar(&o.sfKind, "sfault", "stuck", "sensor-fault kind: stuck, drift, noise, outlier, byzantine")
	flag.Float64Var(&o.sfFrac, "sfaultfrac", 0, "fraction of nodes with faulty sensors in [0,1]; 0 disables sensor faults")
	flag.Float64Var(&o.sfMag, "sfaultmag", 0, "sensor-fault magnitude (drift rad/s, noise stddev rad, outlier probability); 0 = kind default")
	flag.BoolVar(&o.defend, "defend", false, "enable the Byzantine-tolerant sensing defenses (cdpf/cdpf-ne only): innovation gating, Student-t likelihood, node quarantine")
	flag.StringVar(&o.spec, "spec", "", "run a spec/v1 scenario file instead of scenario flags: FILE, or FILE#CELL for one cell of a grid")
	flag.BoolVar(&o.verbose, "v", false, "print a per-iteration trace")
	flag.StringVar(&o.traceOut, "trace", "", "write a per-iteration CSV trace to this file")
	flag.StringVar(&o.prof.CPUProfile, "cpuprofile", "", "write a pprof CPU profile of the run to this file")
	flag.StringVar(&o.prof.MemProfile, "memprofile", "", "write a pprof heap profile at exit to this file")
	flag.StringVar(&o.prof.Trace, "exectrace", "", "write a runtime execution trace to this file (-trace is the CSV trace)")
	flag.StringVar(&o.replayDir, "replay-dir", "", "replay mode: a cdpfd durability directory (WAL + snapshots) to re-run sessions from")
	flag.StringVar(&o.replaySession, "replay-session", "", "session ID to replay from -replay-dir (empty lists the sessions)")
	flag.Parse()
	if *showVersion {
		fmt.Println("cdpfsim", version.String())
		return
	}
	if o.spec != "" {
		var conflicts []string
		flag.Visit(func(f *flag.Flag) {
			if scenarioFlags[f.Name] {
				conflicts = append(conflicts, "-"+f.Name)
			}
		})
		if len(conflicts) > 0 {
			fmt.Fprintf(os.Stderr, "cdpfsim: -spec conflicts with scenario flags %v (the spec owns those axes)\n", conflicts)
			os.Exit(1)
		}
	}

	// Ctrl-C / SIGTERM stops the iteration loop at the next step boundary;
	// the -trace file is only renamed into place when a run completes.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	stopProf, err := prof.Start(o.prof)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cdpfsim:", err)
		os.Exit(1)
	}
	runErr := run(ctx, o)
	if err := stopProf(); err != nil && runErr == nil {
		runErr = err
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "cdpfsim:", runErr)
		os.Exit(1)
	}
}

// options carries the parsed command line.
type options struct {
	algo     string
	density  float64
	seed     uint64
	steps    int
	failFrac float64
	sleepFr  float64
	loss     float64
	burst    float64
	failMid  float64
	sfKind   string
	sfFrac   float64
	sfMag    float64
	defend   bool
	spec     string
	verbose  bool
	traceOut string
	prof     prof.Flags

	replayDir     string
	replaySession string
}

// axes assembles the flag set's spec cell — the single validation and
// execution path shared with -spec files, cdpfmatrix, and benchtab.
func (o options) axes() spec.Axes {
	return spec.Axes{
		Algo:    o.algo,
		Density: o.density,
		Seed:    o.seed,
		Steps:   o.steps,
		Fail:    o.failFrac,
		Sleep:   o.sleepFr,

		Loss:     o.loss,
		Burst:    o.burst,
		FailFrac: o.failMid,

		SensorFault:     o.sfKind,
		SensorFaultFrac: o.sfFrac,
		SensorFaultMag:  o.sfMag,

		Defend: o.defend,
	}
}

func run(ctx context.Context, o options) error {
	if o.replayDir != "" {
		return runReplay(o)
	}
	if o.replaySession != "" {
		return fmt.Errorf("-replay-session requires -replay-dir")
	}
	ax := o.axes()
	if o.spec != "" {
		cell, f, err := spec.LoadCell(o.spec)
		if err != nil {
			return err
		}
		ax = cell.Axes
		fmt.Printf("spec %s cell %s\n", f.Name, cell.Name)
	}
	ax = ax.Normalized()
	if err := ax.Validate(); err != nil {
		return err
	}
	out, err := experiments.RunCell(ctx, ax)
	if err != nil {
		return err
	}

	fmt.Printf("field %gx%g m, %d nodes (density %.1f/100m²), rs=%g m, rc=%g m, %d filter iterations\n",
		out.FieldW, out.FieldH, out.Nodes, out.NetDensity,
		out.SensingR, out.CommR, out.Result.Iterations)
	if out.FaultySensors > 0 {
		fmt.Printf("sensor faults: %d of %d nodes %s\n", out.FaultySensors, out.Nodes, ax.SensorFault)
	}
	if ax.Loss > 0 {
		if ax.Burst > 1 {
			fmt.Printf("link loss: %.0f%% bursty (mean burst %.1f iterations)\n", 100*ax.Loss, ax.Burst)
		} else {
			fmt.Printf("link loss: %.0f%% iid\n", 100*ax.Loss)
		}
	}
	if out.FailStopVictims > 0 {
		fmt.Printf("fault injection: %d nodes fail-stop at t=%g s\n", out.FailStopVictims, out.FailStopTime)
	}
	if out.Defended {
		if cfg, err := ax.TrackerConfig(); err == nil {
			fmt.Printf("sensing defenses: gate %gσ, Student-t ν=%g, quarantine on\n",
				cfg.GateSigma, cfg.Sensor.TailNu)
		}
	}
	if ax.Duty > 0 {
		fmt.Printf("duty cycle: %.0f%% awake target with TDSS proactive wake-up, mean awake share %.2f\n",
			100*ax.Duty, out.AwakeShare)
	}
	if ax.Targets > 1 {
		fmt.Printf("multi-target: %d targets on staggered lanes, mean live tracks %.2f (trace follows lane 0)\n",
			ax.Targets, out.MeanLiveTracks)
	}

	if o.verbose {
		for _, r := range out.Trace.Records {
			truth := mathx.V2(r.TruthX, r.TruthY)
			if r.HaveEst {
				fmt.Printf("k=%2d truth=%v est[k=%d]=%v err=%.2f m, %d msgs / %d B this iteration\n",
					r.K, truth, r.EstForK, mathx.V2(r.EstX, r.EstY), r.Err, r.MsgsDelta, r.BytesDelta)
			} else {
				fmt.Printf("k=%2d truth=%v (no estimate), %d msgs / %d B\n",
					r.K, truth, r.MsgsDelta, r.BytesDelta)
			}
		}
	}
	if o.traceOut != "" {
		if err := writeTraceFile(out.Trace, o.traceOut); err != nil {
			return err
		}
	}

	res := out.Result
	fmt.Printf("\n%s: %d estimates, RMSE %.2f m, max error %.2f m\n",
		ax.Algo, len(res.Errors), mathx.RMS(res.Errors), maxOf(res.Errors))
	fmt.Printf("communication: %s (total %d msgs / %d bytes)\n",
		&res.Comm, res.Comm.TotalMsgs(), res.Comm.TotalBytes())
	if out.Hardened {
		fmt.Printf("track loss: %d episodes, locked %.0f%% of the time since acquisition",
			res.LossEpisodes, 100*res.LockedFrac)
		if len(res.ReacquireIters) > 0 {
			fmt.Printf(", mean reacquire %.1f iterations", mathx.Mean(res.ReacquireIters))
		}
		fmt.Println()
		if rs := out.Resilience; rs != nil {
			fmt.Printf("degradation: %d rebroadcasts (%d saved a particle), %d compensated totals, %d failed nodes at end\n",
				rs.Rebroadcasts, rs.RebroadcastSaves, rs.Compensated, out.DownAtEnd)
		}
	}
	if q := out.Quarantine; q != nil {
		fmt.Printf("quarantine: %d evictions, %d readmissions, %d nodes quarantined at end, %d gated likelihood terms\n",
			q.Evictions, q.Readmissions, len(q.Quarantined), q.Gated)
	}
	return nil
}

// runReplay re-runs a cdpfd session offline from a durability directory. The
// WAL is read without truncating anything — replay is a forensic tool and must
// leave a production data directory untouched.
func runReplay(o options) error {
	rec, err := durable.Load(o.replayDir)
	if err != nil {
		return err
	}
	if o.replaySession == "" {
		if len(rec.Order) == 0 {
			return fmt.Errorf("no sessions logged under %s", o.replayDir)
		}
		fmt.Printf("%d sessions logged under %s:\n", len(rec.Order), o.replayDir)
		for _, id := range rec.Order {
			fmt.Printf("  %-32s %3d batches in WAL\n", id, len(rec.Sessions[id].Batches))
		}
		fmt.Println("replay one with -replay-session ID")
		return nil
	}
	tr, err := serve.Replay(rec, o.replaySession)
	if err != nil {
		return err
	}
	fmt.Printf("replayed session %q: algo %s, density %g, seed %d, %d of %d iterations logged\n",
		o.replaySession, tr.Algo, tr.Density, tr.Seed,
		len(rec.Sessions[o.replaySession].Batches), tr.Len())
	if o.verbose {
		for _, r := range tr.Records {
			if r.HaveEst {
				fmt.Printf("k=%2d truth=(%.2f, %.2f) est[k=%d]=(%.2f, %.2f) err=%.2f m\n",
					r.K, r.TruthX, r.TruthY, r.EstForK, r.EstX, r.EstY, r.Err)
			} else {
				fmt.Printf("k=%2d truth=(%.2f, %.2f) (no estimate)\n", r.K, r.TruthX, r.TruthY)
			}
		}
	}
	var errs []float64
	for _, r := range tr.Records {
		if r.HaveEst {
			errs = append(errs, r.Err)
		}
	}
	fmt.Printf("%s: %d estimates, RMSE %.2f m, max error %.2f m\n",
		tr.Algo, len(errs), mathx.RMS(errs), maxOf(errs))
	if o.traceOut != "" {
		return writeTraceFile(tr, o.traceOut)
	}
	return nil
}

// writeTraceFile writes the CSV trace with write-then-rename so an
// interrupted run never leaves a truncated trace under the requested name.
func writeTraceFile(rec *trace.Recorder, path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := rec.WriteCSV(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	fmt.Printf("trace written to %s (%d iterations)\n", path, rec.Len())
	return nil
}

func maxOf(xs []float64) float64 {
	m := 0.0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
