// Command cdpfsim runs one tracking scenario with a chosen algorithm and
// prints a per-iteration trace plus the run summary — the quickest way to
// watch CDPF work.
//
// Usage:
//
//	cdpfsim [-algo cdpf|cdpf-ne|cpf|sdpf] [-density D] [-seed S]
//	        [-steps N] [-fail F] [-sleep F] [-v]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/mathx"
	"repro/internal/scenario"
	"repro/internal/trace"
)

func main() {
	var (
		algoName = flag.String("algo", "cdpf", "algorithm: cdpf, cdpf-ne, cpf, dpf, sdpf, ekf")
		density  = flag.Float64("density", 20, "node density (nodes per 100 m²)")
		seed     = flag.Uint64("seed", 31, "master random seed")
		steps    = flag.Int("steps", 10, "filter iterations (paper: 10 = 50 s at Δt 5 s)")
		failFrac = flag.Float64("fail", 0, "fraction of nodes failed at deployment")
		sleepFr  = flag.Float64("sleep", 0, "fraction of nodes in unanticipated sleep")
		verbose  = flag.Bool("v", false, "print a per-iteration trace")
		traceOut = flag.String("trace", "", "write a per-iteration CSV trace to this file")
	)
	flag.Parse()

	if err := run(*algoName, *density, *seed, *steps, *failFrac, *sleepFr, *verbose, *traceOut); err != nil {
		fmt.Fprintln(os.Stderr, "cdpfsim:", err)
		os.Exit(1)
	}
}

func run(algoName string, density float64, seed uint64, steps int, failFrac, sleepFr float64, verbose bool, traceOut string) error {
	var algo experiments.Algo
	if algoName == "ekf" {
		algo = "ekf"
	} else {
		var err error
		algo, err = experiments.ParseAlgo(algoName)
		if err != nil {
			return err
		}
	}
	p := scenario.Default(density, seed)
	p.Steps = steps
	p.FailFraction = failFrac
	p.SleepFraction = sleepFr
	sc, err := scenario.Build(p)
	if err != nil {
		return err
	}
	fmt.Printf("field %gx%g m, %d nodes (density %.1f/100m²), rs=%g m, rc=%g m, %d filter iterations\n",
		sc.Net.Cfg.Width, sc.Net.Cfg.Height, sc.Net.Len(), sc.Net.Density(),
		sc.Net.Cfg.SensingRadius, sc.Net.Cfg.CommRadius, sc.Iterations())

	var errs []float64
	step := func(k int) (mathx.Vec2, int, bool) { return mathx.Vec2{}, -1, false }

	switch algo {
	case experiments.AlgoCDPF, experiments.AlgoCDPFNE:
		tr, err := core.NewTracker(sc.Net, core.DefaultConfig(algo == experiments.AlgoCDPFNE))
		if err != nil {
			return err
		}
		rng := sc.RNG(1)
		step = func(k int) (mathx.Vec2, int, bool) {
			r := tr.Step(sc.Observations(k), rng)
			return r.Estimate, k - 1, r.EstimateValid && k >= 1
		}
	case experiments.AlgoCPF:
		c, err := baseline.NewCPF(sc.Net, baseline.DefaultCPFConfig())
		if err != nil {
			return err
		}
		rng := sc.RNG(2)
		step = func(k int) (mathx.Vec2, int, bool) {
			est, ok := c.Step(sc.Observations(k), rng)
			return est, k, ok
		}
	case experiments.AlgoSDPF:
		s, err := baseline.NewSDPF(sc.Net, baseline.DefaultSDPFConfig())
		if err != nil {
			return err
		}
		rng := sc.RNG(3)
		step = func(k int) (mathx.Vec2, int, bool) {
			est, ok := s.Step(sc.Observations(k), rng)
			return est, k, ok
		}
	case experiments.AlgoDPF:
		d, err := baseline.NewDPF(sc.Net, baseline.DefaultDPFConfig())
		if err != nil {
			return err
		}
		rng := sc.RNG(4)
		step = func(k int) (mathx.Vec2, int, bool) {
			est, ok := d.Step(sc.Observations(k), rng)
			return est, k, ok
		}
	case "ekf":
		e, err := baseline.NewEKFTracker(sc.Net, baseline.DefaultEKFConfig())
		if err != nil {
			return err
		}
		rng := sc.RNG(5)
		step = func(k int) (mathx.Vec2, int, bool) {
			est, ok := e.Step(sc.Observations(k), rng)
			return est, k, ok
		}
	}

	rec := trace.New(string(algo), density, seed)
	for k := 0; k < sc.Iterations(); k++ {
		before := sc.Net.Stats.Snapshot()
		detectors := len(sc.DetectingNodes(k))
		est, estFor, ok := step(k)
		d := sc.Net.Stats.Diff(before)
		r := trace.Record{
			K: k, Time: sc.Filter.Times[k],
			TruthX: sc.Truth(k).X, TruthY: sc.Truth(k).Y,
			Detectors: detectors, Holders: -1,
			MsgsDelta: d.TotalMsgs(), BytesDelta: d.TotalBytes(),
		}
		if ok && estFor >= 0 {
			e := est.Dist(sc.Truth(estFor))
			errs = append(errs, e)
			r.HaveEst, r.EstForK, r.EstX, r.EstY, r.Err = true, estFor, est.X, est.Y, e
			if verbose {
				fmt.Printf("k=%2d truth=%v est[k=%d]=%v err=%.2f m, %d msgs / %d B this iteration\n",
					k, sc.Truth(k), estFor, est, e, d.TotalMsgs(), d.TotalBytes())
			}
		} else if verbose {
			fmt.Printf("k=%2d truth=%v (no estimate), %d msgs / %d B\n",
				k, sc.Truth(k), d.TotalMsgs(), d.TotalBytes())
		}
		rec.Add(r)
	}
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := rec.WriteCSV(f); err != nil {
			return err
		}
		fmt.Printf("trace written to %s (%d iterations)\n", traceOut, rec.Len())
	}

	fmt.Printf("\n%s: %d estimates, RMSE %.2f m, max error %.2f m\n",
		algo, len(errs), mathx.RMS(errs), maxOf(errs))
	fmt.Printf("communication: %s (total %d msgs / %d bytes)\n",
		sc.Net.Stats, sc.Net.Stats.TotalMsgs(), sc.Net.Stats.TotalBytes())
	return nil
}

func maxOf(xs []float64) float64 {
	m := 0.0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
