// Command cdpfsim runs one tracking scenario with a chosen algorithm and
// prints a per-iteration trace plus the run summary — the quickest way to
// watch CDPF work.
//
// Usage:
//
//	cdpfsim [-algo cdpf|cdpf-ne|cpf|sdpf] [-density D] [-seed S]
//	        [-steps N] [-fail F] [-sleep F] [-loss P] [-burst L]
//	        [-failfrac F] [-sfault stuck|drift|noise|outlier|byzantine]
//	        [-sfaultfrac F] [-sfaultmag M] [-defend] [-v]
//	        [-cpuprofile FILE] [-memprofile FILE] [-exectrace FILE]
//	cdpfsim -replay-dir DIR [-replay-session ID] [-trace FILE] [-v]
//
// (-trace writes the per-iteration CSV trace; the runtime execution trace is
// -exectrace.)
//
// Replay mode re-runs a production cdpfd session offline from its durability
// directory: the write-ahead log holds the session spec and every admitted
// observation batch, which is everything the deterministic tracker needs to
// reproduce the served trace bit for bit (see internal/serve.Replay). With no
// -replay-session, the sessions found in the WAL are listed.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/experiments"
	"repro/internal/mathx"
	"repro/internal/metrics"
	"repro/internal/prof"
	"repro/internal/scenario"
	"repro/internal/sensorfault"
	"repro/internal/serve"
	"repro/internal/trace"
	"repro/internal/version"
	"repro/internal/wsn"
)

func main() {
	var o options
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.StringVar(&o.algo, "algo", "cdpf", "algorithm: cdpf, cdpf-ne, cpf, dpf, sdpf, ekf")
	flag.Float64Var(&o.density, "density", 20, "node density (nodes per 100 m²)")
	flag.Uint64Var(&o.seed, "seed", 31, "master random seed")
	flag.IntVar(&o.steps, "steps", 10, "filter iterations (paper: 10 = 50 s at Δt 5 s)")
	flag.Float64Var(&o.failFrac, "fail", 0, "fraction of nodes failed at deployment")
	flag.Float64Var(&o.sleepFr, "sleep", 0, "fraction of nodes in unanticipated sleep")
	flag.Float64Var(&o.loss, "loss", 0, "link packet-loss rate in [0,1)")
	flag.Float64Var(&o.burst, "burst", 1, "mean loss-burst length in filter iterations; >1 selects Gilbert–Elliott bursty loss")
	flag.Float64Var(&o.failMid, "failfrac", 0, "fraction of nodes fail-stopped mid-run (fault injection)")
	flag.StringVar(&o.sfKind, "sfault", "stuck", "sensor-fault kind: stuck, drift, noise, outlier, byzantine")
	flag.Float64Var(&o.sfFrac, "sfaultfrac", 0, "fraction of nodes with faulty sensors in [0,1]; 0 disables sensor faults")
	flag.Float64Var(&o.sfMag, "sfaultmag", 0, "sensor-fault magnitude (drift rad/s, noise stddev rad, outlier probability); 0 = kind default")
	flag.BoolVar(&o.defend, "defend", false, "enable the Byzantine-tolerant sensing defenses (cdpf/cdpf-ne only): innovation gating, Student-t likelihood, node quarantine")
	flag.BoolVar(&o.verbose, "v", false, "print a per-iteration trace")
	flag.StringVar(&o.traceOut, "trace", "", "write a per-iteration CSV trace to this file")
	flag.StringVar(&o.prof.CPUProfile, "cpuprofile", "", "write a pprof CPU profile of the run to this file")
	flag.StringVar(&o.prof.MemProfile, "memprofile", "", "write a pprof heap profile at exit to this file")
	flag.StringVar(&o.prof.Trace, "exectrace", "", "write a runtime execution trace to this file (-trace is the CSV trace)")
	flag.StringVar(&o.replayDir, "replay-dir", "", "replay mode: a cdpfd durability directory (WAL + snapshots) to re-run sessions from")
	flag.StringVar(&o.replaySession, "replay-session", "", "session ID to replay from -replay-dir (empty lists the sessions)")
	flag.Parse()
	if *showVersion {
		fmt.Println("cdpfsim", version.String())
		return
	}

	// Ctrl-C / SIGTERM stops the iteration loop at the next step boundary;
	// the -trace file is only renamed into place when a run completes.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	stopProf, err := prof.Start(o.prof)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cdpfsim:", err)
		os.Exit(1)
	}
	runErr := run(ctx, o)
	if err := stopProf(); err != nil && runErr == nil {
		runErr = err
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "cdpfsim:", runErr)
		os.Exit(1)
	}
}

// options carries the parsed command line.
type options struct {
	algo     string
	density  float64
	seed     uint64
	steps    int
	failFrac float64
	sleepFr  float64
	loss     float64
	burst    float64
	failMid  float64
	sfKind   string
	sfFrac   float64
	sfMag    float64
	defend   bool
	verbose  bool
	traceOut string
	prof     prof.Flags

	replayDir     string
	replaySession string
}

// validate rejects out-of-range fault and loss parameters with a one-line
// error before any scenario is built.
func (o options) validate() error {
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"-fail", o.failFrac}, {"-sleep", o.sleepFr},
		{"-failfrac", o.failMid}, {"-sfaultfrac", o.sfFrac},
	} {
		if f.v < 0 || f.v > 1 {
			return fmt.Errorf("%s %v outside [0, 1]", f.name, f.v)
		}
	}
	if o.loss < 0 || o.loss >= 1 {
		return fmt.Errorf("-loss %v outside [0, 1)", o.loss)
	}
	if o.loss > 0 && o.burst > 1 && o.loss/(1-o.loss) > o.burst {
		return fmt.Errorf("-loss %v unreachable with -burst %v (needs loss/(1-loss) <= burst)", o.loss, o.burst)
	}
	if o.sfMag < 0 {
		return fmt.Errorf("-sfaultmag %v negative", o.sfMag)
	}
	if _, err := sensorfault.ParseKind(o.sfKind); err != nil {
		return fmt.Errorf("-sfault: %w", err)
	}
	return nil
}

func run(ctx context.Context, o options) error {
	if o.replayDir != "" {
		return runReplay(o)
	}
	if o.replaySession != "" {
		return fmt.Errorf("-replay-session requires -replay-dir")
	}
	if err := o.validate(); err != nil {
		return err
	}
	var algo experiments.Algo
	if o.algo == "ekf" {
		algo = "ekf"
	} else {
		var err error
		algo, err = experiments.ParseAlgo(o.algo)
		if err != nil {
			return err
		}
	}
	if o.defend && algo != experiments.AlgoCDPF && algo != experiments.AlgoCDPFNE {
		return fmt.Errorf("-defend only applies to cdpf and cdpf-ne, not %s", algo)
	}
	sfKind, _ := sensorfault.ParseKind(o.sfKind)
	p := scenario.Default(o.density, o.seed)
	p.Steps = o.steps
	p.FailFraction = o.failFrac
	p.SleepFraction = o.sleepFr
	p.SensorFault = sensorfault.Plan{Kind: sfKind, Fraction: o.sfFrac, Magnitude: o.sfMag}
	sc, err := scenario.Build(p)
	if err != nil {
		return err
	}
	fmt.Printf("field %gx%g m, %d nodes (density %.1f/100m²), rs=%g m, rc=%g m, %d filter iterations\n",
		sc.Net.Cfg.Width, sc.Net.Cfg.Height, sc.Net.Len(), sc.Net.Density(),
		sc.Net.Cfg.SensingRadius, sc.Net.Cfg.CommRadius, sc.Iterations())
	if sc.SensorFaults != nil {
		fmt.Printf("sensor faults: %d of %d nodes %s\n",
			len(sc.SensorFaults.FaultyNodes()), sc.Net.Len(), sfKind)
	}

	// Fault injection: link loss and a mid-run fail-stop schedule.
	if o.loss > 0 {
		if o.burst > 1 {
			sc.Net.SetBurstLoss(o.loss, o.burst, o.seed^0xfa117)
			fmt.Printf("link loss: %.0f%% bursty (mean burst %.1f iterations)\n", 100*o.loss, o.burst)
		} else {
			sc.Net.SetLossRate(o.loss, o.seed^0xfa117)
			fmt.Printf("link loss: %.0f%% iid\n", 100*o.loss)
		}
	}
	faults := wsn.NewFaultSchedule()
	if o.failMid > 0 {
		mid := sc.Filter.Times[sc.Iterations()/2]
		victims := wsn.RandomNodes(sc.Net, o.failMid, sc.RNG(70))
		faults.FailStopAt(mid, victims)
		fmt.Printf("fault injection: %d nodes fail-stop at t=%g s\n", len(victims), mid)
	}
	hardened := o.loss > 0 || o.failMid > 0

	var errs []float64
	var resilTr *core.Tracker
	step := func(k int) (mathx.Vec2, int, bool) { return mathx.Vec2{}, -1, false }

	switch algo {
	case experiments.AlgoCDPF, experiments.AlgoCDPFNE:
		cfg := core.DefaultConfig(algo == experiments.AlgoCDPFNE)
		if hardened {
			cfg = core.ResilientConfig(algo == experiments.AlgoCDPFNE)
		}
		if o.defend {
			sensing := core.HardenedSensingConfig(algo == experiments.AlgoCDPFNE)
			cfg.GateSigma = sensing.GateSigma
			cfg.Sensor.TailNu = sensing.Sensor.TailNu
			cfg.Quarantine = sensing.Quarantine
			fmt.Printf("sensing defenses: gate %gσ, Student-t ν=%g, quarantine on\n",
				cfg.GateSigma, cfg.Sensor.TailNu)
		}
		tr, err := core.NewTracker(sc.Net, cfg)
		if err != nil {
			return err
		}
		resilTr = tr
		rng := sc.RNG(1)
		step = func(k int) (mathx.Vec2, int, bool) {
			r := tr.Step(sc.Observations(k), rng)
			return r.Estimate, k - 1, r.EstimateValid && k >= 1
		}
	case experiments.AlgoCPF:
		c, err := baseline.NewCPF(sc.Net, baseline.DefaultCPFConfig())
		if err != nil {
			return err
		}
		rng := sc.RNG(2)
		step = func(k int) (mathx.Vec2, int, bool) {
			est, ok := c.Step(sc.Observations(k), rng)
			return est, k, ok
		}
	case experiments.AlgoSDPF:
		s, err := baseline.NewSDPF(sc.Net, baseline.DefaultSDPFConfig())
		if err != nil {
			return err
		}
		rng := sc.RNG(3)
		step = func(k int) (mathx.Vec2, int, bool) {
			est, ok := s.Step(sc.Observations(k), rng)
			return est, k, ok
		}
	case experiments.AlgoDPF:
		d, err := baseline.NewDPF(sc.Net, baseline.DefaultDPFConfig())
		if err != nil {
			return err
		}
		rng := sc.RNG(4)
		step = func(k int) (mathx.Vec2, int, bool) {
			est, ok := d.Step(sc.Observations(k), rng)
			return est, k, ok
		}
	case "ekf":
		e, err := baseline.NewEKFTracker(sc.Net, baseline.DefaultEKFConfig())
		if err != nil {
			return err
		}
		rng := sc.RNG(5)
		step = func(k int) (mathx.Vec2, int, bool) {
			est, ok := e.Step(sc.Observations(k), rng)
			return est, k, ok
		}
	}

	rec := trace.New(string(algo), o.density, o.seed)
	valid := make([]bool, 0, sc.Iterations())
	for k := 0; k < sc.Iterations(); k++ {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("interrupted at iteration %d: %w", k, err)
		}
		faults.ApplyUntil(sc.Net, sc.Filter.Times[k])
		before := sc.Net.Stats.Snapshot()
		detectors := len(sc.DetectingNodes(k))
		est, estFor, ok := step(k)
		valid = append(valid, ok)
		d := sc.Net.Stats.Diff(before)
		r := trace.Record{
			K: k, Time: sc.Filter.Times[k],
			TruthX: sc.Truth(k).X, TruthY: sc.Truth(k).Y,
			Detectors: detectors, Holders: -1,
			MsgsDelta: d.TotalMsgs(), BytesDelta: d.TotalBytes(),
		}
		if ok && estFor >= 0 {
			e := est.Dist(sc.Truth(estFor))
			errs = append(errs, e)
			r.HaveEst, r.EstForK, r.EstX, r.EstY, r.Err = true, estFor, est.X, est.Y, e
			if o.verbose {
				fmt.Printf("k=%2d truth=%v est[k=%d]=%v err=%.2f m, %d msgs / %d B this iteration\n",
					k, sc.Truth(k), estFor, est, e, d.TotalMsgs(), d.TotalBytes())
			}
		} else if o.verbose {
			fmt.Printf("k=%2d truth=%v (no estimate), %d msgs / %d B\n",
				k, sc.Truth(k), d.TotalMsgs(), d.TotalBytes())
		}
		rec.Add(r)
	}
	if o.traceOut != "" {
		if err := writeTraceFile(rec, o.traceOut); err != nil {
			return err
		}
	}

	fmt.Printf("\n%s: %d estimates, RMSE %.2f m, max error %.2f m\n",
		algo, len(errs), mathx.RMS(errs), maxOf(errs))
	fmt.Printf("communication: %s (total %d msgs / %d bytes)\n",
		sc.Net.Stats, sc.Net.Stats.TotalMsgs(), sc.Net.Stats.TotalBytes())
	if hardened {
		episodes, reacq, locked := metrics.TrackEpisodes(valid)
		fmt.Printf("track loss: %d episodes, locked %.0f%% of the time since acquisition",
			episodes, 100*locked)
		if len(reacq) > 0 {
			fmt.Printf(", mean reacquire %.1f iterations", mathx.Mean(reacq))
		}
		fmt.Println()
		if resilTr != nil {
			rs := resilTr.Resilience()
			fmt.Printf("degradation: %d rebroadcasts (%d saved a particle), %d compensated totals, %d failed nodes at end\n",
				rs.Rebroadcasts, rs.RebroadcastSaves, rs.Compensated, faults.DownCount())
		}
	}
	if o.defend && resilTr != nil {
		q := resilTr.Quarantine()
		fmt.Printf("quarantine: %d evictions, %d readmissions, %d nodes quarantined at end, %d gated likelihood terms\n",
			q.Evictions, q.Readmissions, len(q.Quarantined), q.Gated)
	}
	return nil
}

// runReplay re-runs a cdpfd session offline from a durability directory. The
// WAL is read without truncating anything — replay is a forensic tool and must
// leave a production data directory untouched.
func runReplay(o options) error {
	rec, err := durable.Load(o.replayDir)
	if err != nil {
		return err
	}
	if o.replaySession == "" {
		if len(rec.Order) == 0 {
			return fmt.Errorf("no sessions logged under %s", o.replayDir)
		}
		fmt.Printf("%d sessions logged under %s:\n", len(rec.Order), o.replayDir)
		for _, id := range rec.Order {
			fmt.Printf("  %-32s %3d batches in WAL\n", id, len(rec.Sessions[id].Batches))
		}
		fmt.Println("replay one with -replay-session ID")
		return nil
	}
	tr, err := serve.Replay(rec, o.replaySession)
	if err != nil {
		return err
	}
	fmt.Printf("replayed session %q: algo %s, density %g, seed %d, %d of %d iterations logged\n",
		o.replaySession, tr.Algo, tr.Density, tr.Seed,
		len(rec.Sessions[o.replaySession].Batches), tr.Len())
	if o.verbose {
		for _, r := range tr.Records {
			if r.HaveEst {
				fmt.Printf("k=%2d truth=(%.2f, %.2f) est[k=%d]=(%.2f, %.2f) err=%.2f m\n",
					r.K, r.TruthX, r.TruthY, r.EstForK, r.EstX, r.EstY, r.Err)
			} else {
				fmt.Printf("k=%2d truth=(%.2f, %.2f) (no estimate)\n", r.K, r.TruthX, r.TruthY)
			}
		}
	}
	var errs []float64
	for _, r := range tr.Records {
		if r.HaveEst {
			errs = append(errs, r.Err)
		}
	}
	fmt.Printf("%s: %d estimates, RMSE %.2f m, max error %.2f m\n",
		tr.Algo, len(errs), mathx.RMS(errs), maxOf(errs))
	if o.traceOut != "" {
		return writeTraceFile(tr, o.traceOut)
	}
	return nil
}

// writeTraceFile writes the CSV trace with write-then-rename so an
// interrupted run never leaves a truncated trace under the requested name.
func writeTraceFile(rec *trace.Recorder, path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := rec.WriteCSV(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	fmt.Printf("trace written to %s (%d iterations)\n", path, rec.Len())
	return nil
}

func maxOf(xs []float64) float64 {
	m := 0.0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
