package main

import (
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkAlgoRun/cdpf-8         	      20	   5300000 ns/op	 1478681 B/op	     578 allocs/op
BenchmarkAlgoRun/cdpf-8         	      20	   5100000 ns/op	 1478681 B/op	     578 allocs/op
BenchmarkFleetSweep/workers=4-8 	       3	  89385206 ns/op	       179.0 jobs/sec	12225525 B/op	   21480 allocs/op
BenchmarkTrackerStep-8          	    3000	    381920 ns/op	       0 B/op	       0 allocs/op
PASS
`

func TestParseBench(t *testing.T) {
	got, cpu, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if cpu != "Intel(R) Xeon(R) Processor @ 2.10GHz" {
		t.Fatalf("cpu = %q", cpu)
	}
	cdpf, ok := got["BenchmarkAlgoRun/cdpf"]
	if !ok {
		t.Fatalf("missing BenchmarkAlgoRun/cdpf in %v", got)
	}
	// Repeated lines keep the best ns/op.
	if cdpf.NsPerOp != 5100000 || cdpf.AllocsPerOp != 578 || cdpf.BytesPerOp != 1478681 {
		t.Fatalf("cdpf = %+v", cdpf)
	}
	fs := got["BenchmarkFleetSweep/workers=4"]
	if fs.JobsPerSec != 179.0 || fs.AllocsPerOp != 21480 {
		t.Fatalf("fleet = %+v", fs)
	}
	if ts := got["BenchmarkTrackerStep"]; ts.AllocsPerOp != 0 || ts.NsPerOp != 381920 {
		t.Fatalf("trackerstep = %+v", ts)
	}
}

func TestCompareAllocRegressionAlwaysFails(t *testing.T) {
	base := map[string]measurement{
		"BenchmarkAlgoRun/cdpf": {NsPerOp: 5000000, BytesPerOp: 1478681, AllocsPerOp: 578},
	}
	cur := map[string]measurement{
		"BenchmarkAlgoRun/cdpf": {NsPerOp: 5000000, BytesPerOp: 1478681, AllocsPerOp: 579},
	}
	for _, sameCPU := range []bool{true, false} {
		fails, _ := compare(cur, base, sameCPU, 0.20)
		if len(fails) != 1 {
			t.Fatalf("sameCPU=%v: fails = %v, want exactly 1 (allocs gate is machine-independent)",
				sameCPU, fails)
		}
	}
}

func TestCompareNsGateDependsOnCPU(t *testing.T) {
	base := map[string]measurement{
		"BenchmarkAlgoRun/cdpf": {NsPerOp: 5000000, BytesPerOp: 1478681, AllocsPerOp: 578},
	}
	cur := map[string]measurement{
		"BenchmarkAlgoRun/cdpf": {NsPerOp: 6100000, BytesPerOp: 1478681, AllocsPerOp: 578},
	}
	fails, warns := compare(cur, base, true, 0.20)
	if len(fails) != 1 {
		t.Fatalf("matching CPU: fails = %v, want the +22%% ns/op regression gated", fails)
	}
	fails, warns = compare(cur, base, false, 0.20)
	if len(fails) != 0 || len(warns) != 1 {
		t.Fatalf("different CPU: fails = %v warns = %v, want ns demoted to a warning", fails, warns)
	}
}

func TestCompareJobsPerSecRegression(t *testing.T) {
	base := map[string]measurement{
		"BenchmarkFleetSweep/workers=4": {NsPerOp: 9e7, BytesPerOp: 1.2e7, AllocsPerOp: 21480, JobsPerSec: 180},
	}
	cur := map[string]measurement{
		"BenchmarkFleetSweep/workers=4": {NsPerOp: 9e7, BytesPerOp: 1.2e7, AllocsPerOp: 21480, JobsPerSec: 120},
	}
	fails, _ := compare(cur, base, true, 0.20)
	if len(fails) != 1 {
		t.Fatalf("fails = %v, want the -33%% jobs/sec regression gated", fails)
	}
}

func TestCompareWithinBudgetPasses(t *testing.T) {
	base := map[string]measurement{
		"BenchmarkAlgoRun/cdpf": {NsPerOp: 5000000, BytesPerOp: 1478681, AllocsPerOp: 578},
		"BenchmarkTrackerStep":  {NsPerOp: 380000, BytesPerOp: 0, AllocsPerOp: 0},
	}
	cur := map[string]measurement{
		"BenchmarkAlgoRun/cdpf": {NsPerOp: 5400000, BytesPerOp: 1478681, AllocsPerOp: 540},
		"BenchmarkTrackerStep":  {NsPerOp: 400000, BytesPerOp: 0, AllocsPerOp: 0},
	}
	fails, warns := compare(cur, base, true, 0.20)
	if len(fails) != 0 || len(warns) != 0 {
		t.Fatalf("fails = %v warns = %v, want clean pass", fails, warns)
	}
}

func TestCompareMissingBenchmarkWarns(t *testing.T) {
	base := map[string]measurement{
		"BenchmarkAlgoRun/cdpf": {NsPerOp: 5000000, AllocsPerOp: 578},
	}
	fails, warns := compare(map[string]measurement{}, base, true, 0.20)
	if len(fails) != 0 || len(warns) != 1 {
		t.Fatalf("fails = %v warns = %v, want a single not-run warning", fails, warns)
	}
}
