// Command benchdiff is the hot-path regression gate: it parses `go test
// -bench` text output and compares it against the checked-in baseline
// (results/BENCH_hotpath.json), exiting non-zero on regressions.
//
// Gating rules:
//
//   - allocs/op is machine-independent, so ANY increase over the baseline
//     fails.
//   - B/op is machine-independent too, but garbage-collector and map-growth
//     details make it mildly version-sensitive; increases beyond 5% warn.
//   - ns/op and jobs/sec depend on the hardware. They are enforced (at
//     -ns-tol, default 20%) only when the baseline's recorded CPU string
//     matches the bench output's; on different hardware they demote to
//     warnings so CI runners with other CPUs still gate the allocation
//     budgets without flaking on wall-clock noise.
//
// With -count > 1 bench runs, the best line per benchmark is used (min
// ns/op, B/op, allocs/op; max jobs/sec).
//
// The same gate applies to any baseline in the benchfmt schema, e.g.
// results/BENCH_serve.json written by cmd/cdpfload (-baseline selects it).
//
// Usage:
//
//	go test -run NONE -bench 'AlgoRun|FleetSweep' -benchmem . | tee bench.txt
//	go run ./cmd/benchdiff -bench bench.txt
//	go run ./cmd/benchdiff -bench bench.txt -update   # refresh the baseline
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/benchfmt"
	"repro/internal/version"
)

// measurement and baseline are the shared interchange types; see
// internal/benchfmt for the schema.
type (
	measurement = benchfmt.Measurement
	baseline    = benchfmt.Baseline
)

func parseBench(r io.Reader) (map[string]measurement, string, error) {
	return benchfmt.ParseBench(r)
}

func main() {
	var (
		benchPath   = flag.String("bench", "-", "bench output file to check ('-' = stdin)")
		basePath    = flag.String("baseline", "results/BENCH_hotpath.json", "baseline JSON file")
		nsTol       = flag.Float64("ns-tol", 0.20, "allowed fractional ns/op (and jobs/sec) regression on matching hardware")
		update      = flag.Bool("update", false, "rewrite the baseline section from the bench output instead of gating")
		showVersion = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *showVersion {
		fmt.Println("benchdiff", version.String())
		return
	}

	if err := run(*benchPath, *basePath, *nsTol, *update, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}

// compare gates cur against base. Returned fails break the build; warns are
// informational (wrong hardware, missing benchmarks, byte drift).
func compare(cur, base map[string]measurement, sameCPU bool, nsTol float64) (fails, warns []string) {
	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	// Deterministic report order.
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			if names[j] < names[i] {
				names[i], names[j] = names[j], names[i]
			}
		}
	}
	hw := func(msg string) {
		if sameCPU {
			fails = append(fails, msg)
		} else {
			warns = append(warns, msg+" (different CPU than baseline; not gated)")
		}
	}
	for _, name := range names {
		b := base[name]
		c, ok := cur[name]
		if !ok {
			warns = append(warns, fmt.Sprintf("%s: in baseline but not in bench output", name))
			continue
		}
		if c.AllocsPerOp > b.AllocsPerOp {
			fails = append(fails, fmt.Sprintf("%s: allocs/op %.0f > baseline %.0f",
				name, c.AllocsPerOp, b.AllocsPerOp))
		}
		if b.BytesPerOp > 0 && c.BytesPerOp > b.BytesPerOp*1.05 {
			warns = append(warns, fmt.Sprintf("%s: B/op %.0f exceeds baseline %.0f by >5%%",
				name, c.BytesPerOp, b.BytesPerOp))
		}
		if b.NsPerOp > 0 && c.NsPerOp > b.NsPerOp*(1+nsTol) {
			hw(fmt.Sprintf("%s: ns/op %.0f > baseline %.0f +%.0f%%",
				name, c.NsPerOp, b.NsPerOp, 100*nsTol))
		}
		if b.JobsPerSec > 0 && c.JobsPerSec > 0 && c.JobsPerSec < b.JobsPerSec*(1-nsTol) {
			hw(fmt.Sprintf("%s: jobs/sec %.1f < baseline %.1f -%.0f%%",
				name, c.JobsPerSec, b.JobsPerSec, 100*nsTol))
		}
	}
	return fails, warns
}

func run(benchPath, basePath string, nsTol float64, update bool, w io.Writer) error {
	var in io.Reader = os.Stdin
	if benchPath != "-" {
		f, err := os.Open(benchPath)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	cur, cpu, err := parseBench(in)
	if err != nil {
		return err
	}

	base, err := benchfmt.ReadBaseline(basePath)
	if err != nil {
		if !(os.IsNotExist(err) && update) {
			return err
		}
		base = baseline{Schema: "bench-hotpath/v1"}
	}

	if update {
		if base.Baseline == nil {
			base.Baseline = make(map[string]measurement)
		}
		for name, m := range cur {
			base.Baseline[name] = m
		}
		base.CPU = cpu
		base.Recorded = time.Now().Format("2006-01-02")
		if err := base.Write(basePath); err != nil {
			return err
		}
		fmt.Fprintf(w, "benchdiff: baseline %s updated (%d benchmarks)\n", basePath, len(cur))
		return nil
	}

	sameCPU := cpu != "" && cpu == base.CPU
	fails, warns := compare(cur, base.Baseline, sameCPU, nsTol)
	for _, msg := range warns {
		fmt.Fprintln(w, "WARN:", msg)
	}
	for _, msg := range fails {
		fmt.Fprintln(w, "FAIL:", msg)
	}
	if len(fails) > 0 {
		return fmt.Errorf("%d hot-path regression(s) against %s", len(fails), basePath)
	}
	fmt.Fprintf(w, "benchdiff: %d benchmarks within budget (%d warnings)\n", len(base.Baseline), len(warns))
	return nil
}
