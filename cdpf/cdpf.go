// Package cdpf is the public API of the CDPF reproduction: completely
// distributed particle filters for target tracking in wireless sensor
// networks (Jiang & Ravindran, IPDPS 2011).
//
// The package re-exports the library's building blocks under one import:
//
//   - deploy a sensor field (NewNetwork / DefaultNetworkConfig),
//   - build the paper's simulation scenario (NewScenario / DefaultScenario),
//   - track with the paper's contribution (NewTracker — CDPF and CDPF-NE),
//   - compare against the baselines (NewCPF, NewSDPF),
//   - and account every byte the algorithms transmit (Network.Stats).
//
// Quickstart:
//
//	sc, _ := cdpf.DefaultScenario(20, 42) // density 20 nodes/100m², seed 42
//	tr, _ := cdpf.NewTracker(sc.Net, cdpf.DefaultTrackerConfig(false))
//	rng := sc.RNG(1)
//	for k := 0; k < sc.Iterations(); k++ {
//		res := tr.Step(sc.Observations(k), rng)
//		if res.EstimateValid {
//			fmt.Println(res.Estimate) // estimate for iteration k-1
//		}
//	}
//	fmt.Println(sc.Net.Stats) // bytes/messages the run cost
package cdpf

import (
	"repro/internal/baseline"
	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/filter"
	"repro/internal/mathx"
	"repro/internal/multi"
	"repro/internal/scenario"
	"repro/internal/sched"
	"repro/internal/sensorfault"
	"repro/internal/sim"
	"repro/internal/statex"
	"repro/internal/wsn"
)

// Geometry and randomness.
type (
	// Vec2 is a point in the 2-D field.
	Vec2 = mathx.Vec2
	// RNG is the deterministic random source all components draw from.
	RNG = mathx.RNG
)

// V2 constructs a Vec2.
func V2(x, y float64) Vec2 { return mathx.V2(x, y) }

// Mat is a small dense row-major matrix (for Kalman-filter plumbing).
type Mat = mathx.Mat

// MatFromRows builds a matrix from row slices.
func MatFromRows(rows ...[]float64) *Mat { return mathx.MatFromRows(rows...) }

// Diag returns a square matrix with d on the diagonal.
func Diag(d ...float64) *Mat { return mathx.Diag(d...) }

// Identity returns the n x n identity matrix.
func Identity(n int) *Mat { return mathx.Identity(n) }

// NewRNG returns a deterministic generator for the given seed.
func NewRNG(seed uint64) *RNG { return mathx.NewRNG(seed) }

// Network substrate.
type (
	// Network is a deployed sensor field with an accounting radio.
	Network = wsn.Network
	// NetworkConfig parameterizes a deployment.
	NetworkConfig = wsn.Config
	// NodeID identifies one sensor node.
	NodeID = wsn.NodeID
	// Node is one deployed sensor node.
	Node = wsn.Node
	// NodeState is a node's operational status.
	NodeState = wsn.NodeState
	// CommStats holds per-kind message/byte counters.
	CommStats = wsn.CommStats
	// MsgSizes are the radio payload sizes (Dp, Dm, Dw).
	MsgSizes = wsn.MsgSizes
	// EnergyModel charges transmit/receive/idle/sleep energy.
	EnergyModel = wsn.EnergyModel
)

// Node operational states.
const (
	Awake  = wsn.Awake
	Asleep = wsn.Asleep
	Failed = wsn.Failed
)

// DefaultNetworkConfig returns the paper's 200x200 m field at the given
// density (nodes per 100 m²) with r_s = 10 m and r_c = 30 m.
func DefaultNetworkConfig(density float64) NetworkConfig { return wsn.DefaultConfig(density) }

// NewNetwork deploys a field.
func NewNetwork(cfg NetworkConfig, rng *RNG) (*Network, error) { return wsn.NewNetwork(cfg, rng) }

// PaperMsgSizes returns Dp=16, Dm=4, Dw=4 bytes (32-bit platform).
func PaperMsgSizes() MsgSizes { return wsn.PaperMsgSizes() }

// Dynamic system.
type (
	// State is the (position, velocity) tracking state.
	State = statex.State
	// Trajectory is a time-indexed ground-truth track.
	Trajectory = statex.Trajectory
	// TargetConfig describes the random-turn target.
	TargetConfig = statex.TargetConfig
	// BearingSensor is the bearings-only measurement model.
	BearingSensor = statex.BearingSensor
	// Measurement couples an observer position with a bearing.
	Measurement = statex.Measurement
)

// DefaultTargetConfig returns the paper's target: entry (0, 100), 3 m/s,
// random ±15° turns every second.
func DefaultTargetConfig() TargetConfig { return statex.DefaultTargetConfig() }

// GenTrajectory simulates the ground-truth target.
func GenTrajectory(cfg TargetConfig, steps int, rng *RNG) (*Trajectory, error) {
	return statex.GenTrajectory(cfg, steps, rng)
}

// Scenarios (the Section VI simulation environment).
type (
	// Scenario bundles a deployed network with a ground-truth track and
	// deterministic observation streams.
	Scenario = scenario.Scenario
	// ScenarioParams configures a scenario.
	ScenarioParams = scenario.Params
	// Observation is one node's bearing at the current iteration.
	Observation = core.Observation
)

// DefaultScenarioParams returns the paper's evaluation parameters.
func DefaultScenarioParams(density float64, seed uint64) ScenarioParams {
	return scenario.Default(density, seed)
}

// NewScenario builds a scenario from explicit parameters.
func NewScenario(p ScenarioParams) (*Scenario, error) { return scenario.Build(p) }

// DefaultScenario builds the paper's scenario at the given density and seed.
func DefaultScenario(density float64, seed uint64) (*Scenario, error) {
	return scenario.Build(scenario.Default(density, seed))
}

// The paper's contribution.
type (
	// Tracker runs CDPF or CDPF-NE over a network.
	Tracker = core.Tracker
	// TrackerConfig parameterizes a tracker.
	TrackerConfig = core.Config
	// StepResult reports one iteration's outputs.
	StepResult = core.StepResult
	// Contributions is a neighborhood-estimation result (Definition 2).
	Contributions = core.Contributions
)

// DefaultTrackerConfig returns the evaluation configuration; useNE selects
// the CDPF-NE variant.
func DefaultTrackerConfig(useNE bool) TrackerConfig { return core.DefaultConfig(useNE) }

// ResilientTrackerConfig returns the evaluation configuration hardened for
// lossy networks: bounded re-broadcast and overheard-total compensation
// enabled (both inert without packet loss).
func ResilientTrackerConfig(useNE bool) TrackerConfig { return core.ResilientConfig(useNE) }

// NewTracker creates a CDPF/CDPF-NE tracker on the network.
func NewTracker(nw *Network, cfg TrackerConfig) (*Tracker, error) { return core.NewTracker(nw, cfg) }

// EstimateContributions evaluates Definition 2's neighbor contributions
// within the estimation area centered at pred.
func EstimateContributions(nw *Network, pred Vec2, radius float64) *Contributions {
	return core.EstimateContributions(nw, pred, radius)
}

// Baselines.
type (
	// CPF is the centralized baseline (sink + convergecast + SIR).
	CPF = baseline.CPF
	// CPFConfig parameterizes CPF.
	CPFConfig = baseline.CPFConfig
	// DPF is the compressed-convergecast baseline (Coates, IPSN 2004).
	DPF = baseline.DPF
	// DPFConfig parameterizes DPF.
	DPFConfig = baseline.DPFConfig
	// SDPF is Coates & Ing's semi-distributed baseline.
	SDPF = baseline.SDPF
	// SDPFConfig parameterizes SDPF.
	SDPFConfig = baseline.SDPFConfig
	// EKFTracker is the centralized extended-Kalman reference tracker.
	EKFTracker = baseline.EKFTracker
	// EKFConfig parameterizes the EKF tracker.
	EKFConfig = baseline.EKFConfig
)

// DefaultCPFConfig returns the paper's CPF configuration (N_s = 1000).
func DefaultCPFConfig() CPFConfig { return baseline.DefaultCPFConfig() }

// NewCPF creates the centralized baseline on the network.
func NewCPF(nw *Network, cfg CPFConfig) (*CPF, error) { return baseline.NewCPF(nw, cfg) }

// DefaultSDPFConfig returns the paper's SDPF configuration (8 particles per
// detecting node).
func DefaultSDPFConfig() SDPFConfig { return baseline.DefaultSDPFConfig() }

// NewSDPF creates the semi-distributed baseline on the network.
func NewSDPF(nw *Network, cfg SDPFConfig) (*SDPF, error) { return baseline.NewSDPF(nw, cfg) }

// DefaultDPFConfig returns the 1-byte compressed-convergecast configuration.
func DefaultDPFConfig() DPFConfig { return baseline.DefaultDPFConfig() }

// NewDPF creates the compressed centralized baseline on the network.
func NewDPF(nw *Network, cfg DPFConfig) (*DPF, error) { return baseline.NewDPF(nw, cfg) }

// DefaultEKFConfig returns the centralized EKF configuration.
func DefaultEKFConfig() EKFConfig { return baseline.DefaultEKFConfig() }

// NewEKFTracker creates the centralized EKF reference tracker.
func NewEKFTracker(nw *Network, cfg EKFConfig) (*EKFTracker, error) {
	return baseline.NewEKFTracker(nw, cfg)
}

// Multi-target tracking.
type (
	// MultiManager maintains one CDPF track per target with geometric data
	// association.
	MultiManager = multi.Manager
	// MultiConfig parameterizes the multi-target manager.
	MultiConfig = multi.Config
	// MultiTrack is one maintained target hypothesis.
	MultiTrack = multi.Track
)

// DefaultMultiConfig returns the multi-target configuration over standard
// CDPF trackers (useNE selects CDPF-NE per track).
func DefaultMultiConfig(useNE bool) MultiConfig { return multi.DefaultConfig(useNE) }

// NewMultiManager creates a multi-target manager on the network.
func NewMultiManager(nw *Network, cfg MultiConfig) (*MultiManager, error) {
	return multi.NewManager(nw, cfg)
}

// Generic particle filtering (reusable outside the WSN setting).
type (
	// Particle is one weighted sample.
	Particle = filter.Particle
	// ParticleSet is an ordered weighted sample set.
	ParticleSet = filter.Set
	// Resampler is a resampling scheme.
	Resampler = filter.Resampler
	// SIR is a sampling-importance-resampling filter.
	SIR = filter.SIR
	// SIRConfig parameterizes a SIR filter.
	SIRConfig = filter.SIRConfig
	// Kalman is the linear-Gaussian reference filter.
	Kalman = filter.Kalman
	// EKF is the extended Kalman filter with scalar sequential updates.
	EKF = filter.EKF
	// KLDConfig adapts particle counts via KLD-sampling.
	KLDConfig = filter.KLDConfig
	// APF is an auxiliary (look-ahead) particle filter.
	APF = filter.APF
	// APFConfig parameterizes an APF.
	APFConfig = filter.APFConfig
	// Regularizer applies post-resampling kernel jitter (regularized PF).
	Regularizer = filter.Regularizer
	// CTModel is the coordinated-turn state transition model.
	CTModel = statex.CTModel
	// CVModel is the (nearly) constant-velocity transition model of Eq. 5.
	CVModel = statex.CVModel
)

// NewSIR constructs a SIR filter.
func NewSIR(cfg SIRConfig) (*SIR, error) { return filter.NewSIR(cfg) }

// NewAPF constructs an auxiliary particle filter.
func NewAPF(cfg APFConfig) (*APF, error) { return filter.NewAPF(cfg) }

// NewKalman constructs a linear Kalman filter from transition F, process
// covariance Q, measurement matrix H, measurement covariance R, and the
// initial state/covariance.
func NewKalman(f, q, h, r *Mat, x0 []float64, p0 *Mat) (*Kalman, error) {
	return filter.NewKalman(f, q, h, r, x0, p0)
}

// NewEKF constructs an extended Kalman filter with scalar sequential
// updates.
func NewEKF(f, q *Mat, x0 []float64, p0 *Mat) (*EKF, error) {
	return filter.NewEKF(f, q, x0, p0)
}

// NewCVModel constructs the constant-velocity transition model.
func NewCVModel(dt, sigmaX, sigmaY float64) (*CVModel, error) {
	return statex.NewCVModel(dt, sigmaX, sigmaY)
}

// NewCTModel constructs the coordinated-turn transition model.
func NewCTModel(dt, omega, sigmaV float64) (*CTModel, error) {
	return statex.NewCTModel(dt, omega, sigmaV)
}

// Resamplers returns the four implemented resampling schemes.
func Resamplers() []Resampler { return filter.Resamplers() }

// Scheduling (duty cycling and TDSS-style proactive wake-up).
type (
	// Scheduler applies duty-cycle and forced-wake state to a network.
	Scheduler = sched.Scheduler
	// DutyCycle is a periodic sleep schedule.
	DutyCycle = sched.DutyCycle
)

// NewDutyCycle creates a random-phase duty cycle for n nodes.
func NewDutyCycle(n int, period, onFraction float64, rng *RNG) (*DutyCycle, error) {
	return sched.NewDutyCycle(n, period, onFraction, rng)
}

// NewScheduler wires a duty cycle (nil = always on) to a network.
func NewScheduler(nw *Network, dc *DutyCycle) *Scheduler { return sched.NewScheduler(nw, dc) }

// DefaultEnergyModel returns MICA2-flavored energy constants.
func DefaultEnergyModel() *EnergyModel { return wsn.DefaultEnergyModel() }

// Fault injection.
type (
	// FaultSchedule is a replayable script of node failures (fail-stops,
	// transient outages, regional blackouts) applied to a network over time.
	FaultSchedule = wsn.FaultSchedule
	// FaultEvent is one scheduled state change.
	FaultEvent = wsn.FaultEvent
)

// NewFaultSchedule creates an empty fault script.
func NewFaultSchedule() *FaultSchedule { return wsn.NewFaultSchedule() }

// RandomFaultNodes picks a deterministic victim set of the given fraction
// of the network's nodes.
func RandomFaultNodes(nw *Network, frac float64, rng *RNG) []NodeID {
	return wsn.RandomNodes(nw, frac, rng)
}

// Sensor faults.
type (
	// SensorFaultScript is a replayable, time-windowed sensor corruption
	// schedule (stuck-at, drift, noise inflation, outliers, Byzantine).
	SensorFaultScript = sensorfault.Script
	// SensorFaultPlan is the fraction-based generator compiled by
	// scenario building: a fraction of the deployment exhibits one fault
	// kind over a time window.
	SensorFaultPlan = sensorfault.Plan
	// SensorFaultKind identifies one corruption model.
	SensorFaultKind = sensorfault.Kind
)

// NewSensorFaultScript creates an empty corruption schedule whose draws
// derive from seed.
func NewSensorFaultScript(seed uint64) *SensorFaultScript { return sensorfault.NewScript(seed) }

// HardenedSensingTrackerConfig returns the evaluation configuration with
// the Byzantine-tolerant sensing defenses enabled: innovation gating, a
// Student-t likelihood, and online node quarantine.
func HardenedSensingTrackerConfig(useNE bool) TrackerConfig {
	return core.HardenedSensingConfig(useNE)
}

// In-network aggregation by gossip.
type (
	// GossipConfig parameterizes a consensus aggregation.
	GossipConfig = consensus.Config
	// GossipResult reports one aggregation (values, rounds, radio cost).
	GossipResult = consensus.Result
)

// GossipAverage computes the participants' average by randomized pairwise
// gossip, charging every exchange to the network's radio.
func GossipAverage(nw *Network, values map[NodeID]float64, cfg GossipConfig, rng *RNG) (GossipResult, error) {
	return consensus.Average(nw, values, cfg, rng)
}

// Event-driven sessions.
type (
	// Session is a discrete-event tracking run (target motion, duty
	// cycling, proactive wake-ups, and filter iterations on one clock).
	Session = sim.Session
	// SessionConfig parameterizes a session.
	SessionConfig = sim.Config
	// IterationEvent is one filter iteration's session record.
	IterationEvent = sim.IterationEvent
)

// NewSession builds an event-driven tracking session.
func NewSession(cfg SessionConfig) (*Session, error) { return sim.NewSession(cfg) }
