package cdpf_test

import (
	"math"
	"testing"

	"repro/cdpf"
)

// TestPublicAPITrackingFlow drives the whole quickstart flow through the
// public facade only.
func TestPublicAPITrackingFlow(t *testing.T) {
	sc, err := cdpf.DefaultScenario(20, 42)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := cdpf.NewTracker(sc.Net, cdpf.DefaultTrackerConfig(false))
	if err != nil {
		t.Fatal(err)
	}
	rng := sc.RNG(1)
	estimates := 0
	var sumErr float64
	for k := 0; k < sc.Iterations(); k++ {
		res := tr.Step(sc.Observations(k), rng)
		if res.EstimateValid && k >= 1 {
			estimates++
			sumErr += res.Estimate.Dist(sc.Truth(k - 1))
		}
	}
	if estimates < 8 {
		t.Fatalf("estimates = %d", estimates)
	}
	if mean := sumErr / float64(estimates); math.IsNaN(mean) || mean > 10 {
		t.Fatalf("mean error = %v", mean)
	}
	if sc.Net.Stats.TotalBytes() == 0 {
		t.Fatal("no communication accounted")
	}
}

func TestPublicAPINetworkConstruction(t *testing.T) {
	nw, err := cdpf.NewNetwork(cdpf.DefaultNetworkConfig(5), cdpf.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if nw.Len() != 2000 {
		t.Fatalf("nodes = %d", nw.Len())
	}
	s := cdpf.PaperMsgSizes()
	if s.Dp != 16 || s.Dm != 4 || s.Dw != 4 {
		t.Fatalf("sizes = %+v", s)
	}
}

func TestPublicAPIBaselines(t *testing.T) {
	sc, err := cdpf.DefaultScenario(10, 7)
	if err != nil {
		t.Fatal(err)
	}
	c, err := cdpf.NewCPF(sc.Net, cdpf.DefaultCPFConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Step(sc.Observations(0), sc.RNG(2)); !ok {
		t.Fatal("CPF did not initialize on first detections")
	}
	sc2, err := cdpf.DefaultScenario(10, 7)
	if err != nil {
		t.Fatal(err)
	}
	s, err := cdpf.NewSDPF(sc2.Net, cdpf.DefaultSDPFConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Step(sc2.Observations(0), sc2.RNG(3)); !ok {
		t.Fatal("SDPF did not initialize on first detections")
	}
}

func TestPublicAPIFilterPrimitives(t *testing.T) {
	if len(cdpf.Resamplers()) != 4 {
		t.Fatal("expected 4 resampling schemes")
	}
	pf, err := cdpf.NewSIR(cdpf.SIRConfig{N: 10})
	if err != nil {
		t.Fatal(err)
	}
	rng := cdpf.NewRNG(1)
	pf.Init(func(r *cdpf.RNG) cdpf.State {
		return cdpf.State{Pos: cdpf.V2(r.Float64(), r.Float64())}
	}, rng)
	if pf.Particles().Len() != 10 {
		t.Fatal("SIR init failed")
	}
}

func TestPublicAPINeighborhoodEstimation(t *testing.T) {
	nw, err := cdpf.NewNetwork(cdpf.DefaultNetworkConfig(20), cdpf.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	cs := cdpf.EstimateContributions(nw, cdpf.V2(100, 100), 10)
	if cs == nil {
		t.Skip("empty area")
	}
	if math.Abs(cs.Total()-1) > 1e-9 {
		t.Fatalf("contributions not normalized: %v", cs.Total())
	}
}

func TestPublicAPIScheduling(t *testing.T) {
	nw, err := cdpf.NewNetwork(cdpf.DefaultNetworkConfig(5), cdpf.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	dc, err := cdpf.NewDutyCycle(nw.Len(), 10, 0.25, cdpf.NewRNG(6))
	if err != nil {
		t.Fatal(err)
	}
	s := cdpf.NewScheduler(nw, dc)
	s.Apply(0)
	frac := float64(s.AwakeCount()) / float64(nw.Len())
	if frac < 0.15 || frac > 0.35 {
		t.Fatalf("awake fraction = %v", frac)
	}
}

func TestPublicAPIMultiTarget(t *testing.T) {
	nw, err := cdpf.NewNetwork(cdpf.DefaultNetworkConfig(20), cdpf.NewRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := cdpf.NewMultiManager(nw, cdpf.DefaultMultiConfig(false))
	if err != nil {
		t.Fatal(err)
	}
	sensor := cdpf.BearingSensor{SigmaN: 0.05}
	noise := cdpf.NewRNG(10)
	rng := cdpf.NewRNG(11)
	target := cdpf.V2(50, 50)
	for k := 0; k < 4; k++ {
		var obs []cdpf.Observation
		for _, id := range nw.ActiveNodesWithin(target, nw.Cfg.SensingRadius) {
			obs = append(obs, cdpf.Observation{
				Node:    id,
				Bearing: sensor.Measure(nw.Node(id).Pos, target, noise),
			})
		}
		mgr.Step(obs, rng)
		target = target.Add(cdpf.V2(15, 0))
	}
	if len(mgr.Tracks()) != 1 {
		t.Fatalf("tracks = %d, want 1", len(mgr.Tracks()))
	}
}

func TestPublicAPIKalmanAndModels(t *testing.T) {
	cv, err := cdpf.NewCVModel(1, 0.1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := cdpf.NewCTModel(1, 0.2, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	_ = ct
	h := cdpf.MatFromRows([]float64{1, 0, 0, 0}, []float64{0, 1, 0, 0})
	r := cdpf.Diag(0.25, 0.25)
	kf, err := cdpf.NewKalman(cv.Phi, cv.ProcessCov(), h, r, make([]float64, 4), cdpf.Identity(4))
	if err != nil {
		t.Fatal(err)
	}
	kf.Predict()
	if err := kf.Update([]float64{0.5, -0.5}); err != nil {
		t.Fatal(err)
	}
	ekf, err := cdpf.NewEKF(cv.Phi, cv.ProcessCov(), make([]float64, 4), cdpf.Identity(4))
	if err != nil {
		t.Fatal(err)
	}
	ekf.Predict()
	apf, err := cdpf.NewAPF(cdpf.APFConfig{N: 20})
	if err != nil {
		t.Fatal(err)
	}
	apf.Init(func(r *cdpf.RNG) cdpf.State {
		return cdpf.State{Pos: cdpf.V2(r.Float64(), r.Float64())}
	}, cdpf.NewRNG(1))
	if apf.Particles().Len() != 20 {
		t.Fatal("APF init failed")
	}
}

// TestPublicAPIResilience drives the fault-injection facade: bursty loss,
// a fail-stop schedule, and the hardened tracker configuration.
func TestPublicAPIResilience(t *testing.T) {
	sc, err := cdpf.DefaultScenario(20, 42)
	if err != nil {
		t.Fatal(err)
	}
	sc.Net.SetBurstLoss(0.3, 3, 99)
	faults := cdpf.NewFaultSchedule()
	mid := sc.Filter.Times[sc.Iterations()/2]
	victims := cdpf.RandomFaultNodes(sc.Net, 0.2, sc.RNG(70))
	faults.FailStopAt(mid, victims)
	tr, err := cdpf.NewTracker(sc.Net, cdpf.ResilientTrackerConfig(false))
	if err != nil {
		t.Fatal(err)
	}
	rng := sc.RNG(1)
	estimates := 0
	for k := 0; k < sc.Iterations(); k++ {
		faults.ApplyUntil(sc.Net, sc.Filter.Times[k])
		if tr.Step(sc.Observations(k), rng).EstimateValid {
			estimates++
		}
	}
	if estimates < 5 {
		t.Fatalf("estimates = %d under faults", estimates)
	}
	if faults.DownCount() != len(victims) {
		t.Fatalf("DownCount = %d, want %d", faults.DownCount(), len(victims))
	}
	rs := tr.Resilience()
	if rs.Compensated == 0 {
		t.Fatal("compensation never fired under 30% bursty loss")
	}
}

func TestPublicAPISensorFaultDefenses(t *testing.T) {
	p := cdpf.DefaultScenarioParams(20, 42)
	p.SensorFault = cdpf.SensorFaultPlan{Fraction: 0.2} // zero Kind = stuck-at
	sc, err := cdpf.NewScenario(p)
	if err != nil {
		t.Fatal(err)
	}
	if sc.SensorFaults == nil || len(sc.SensorFaults.FaultyNodes()) == 0 {
		t.Fatal("enabled plan compiled no fault script")
	}
	tr, err := cdpf.NewTracker(sc.Net, cdpf.HardenedSensingTrackerConfig(false))
	if err != nil {
		t.Fatal(err)
	}
	rng := sc.RNG(1)
	estimates := 0
	for k := 0; k < sc.Iterations(); k++ {
		if tr.Step(sc.Observations(k), rng).EstimateValid {
			estimates++
		}
	}
	if estimates < 5 {
		t.Fatalf("estimates = %d under sensor faults", estimates)
	}
	q := tr.Quarantine()
	if q.Evictions == 0 {
		t.Fatal("quarantine never evicted with 20% stuck sensors")
	}
}
