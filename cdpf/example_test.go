package cdpf_test

import (
	"fmt"

	"repro/cdpf"
)

// ExampleNewTracker runs CDPF over the paper's scenario and prints the run's
// outcome summary.
func ExampleNewTracker() {
	sc, err := cdpf.DefaultScenario(20, 42)
	if err != nil {
		panic(err)
	}
	tracker, err := cdpf.NewTracker(sc.Net, cdpf.DefaultTrackerConfig(false))
	if err != nil {
		panic(err)
	}
	rng := sc.RNG(1)
	estimates := 0
	for k := 0; k < sc.Iterations(); k++ {
		res := tracker.Step(sc.Observations(k), rng)
		if res.EstimateValid && k >= 1 {
			estimates++
		}
	}
	fmt.Printf("estimates: %d of %d iterations\n", estimates, sc.Iterations()-1)
	fmt.Printf("measurement traffic present: %v\n", sc.Net.Stats.Bytes[1] > 0)
	// Output:
	// estimates: 10 of 10 iterations
	// measurement traffic present: true
}

// ExampleEstimateContributions evaluates Definition 2 of the paper: the
// normalized, communication-free contributions of the nodes inside an
// estimation area.
func ExampleEstimateContributions() {
	nw, err := cdpf.NewNetwork(cdpf.DefaultNetworkConfig(20), cdpf.NewRNG(3))
	if err != nil {
		panic(err)
	}
	cs := cdpf.EstimateContributions(nw, cdpf.V2(100, 100), 10)
	fmt.Printf("contributions sum to 1: %v\n", cs.Total() > 0.999 && cs.Total() < 1.001)
	fmt.Printf("nodes in the estimation area: %v\n", len(cs.Nodes) > 0)
	// Output:
	// contributions sum to 1: true
	// nodes in the estimation area: true
}

// ExampleNewSIR cross-checks the generic SIR particle filter against direct
// measurements on a toy problem.
func ExampleNewSIR() {
	pf, err := cdpf.NewSIR(cdpf.SIRConfig{N: 500})
	if err != nil {
		panic(err)
	}
	rng := cdpf.NewRNG(7)
	pf.Init(func(r *cdpf.RNG) cdpf.State {
		return cdpf.State{Pos: cdpf.V2(r.Normal(0, 2), r.Normal(0, 2))}
	}, rng)

	// One measurement update pulls the cloud toward the observation.
	z := cdpf.V2(3, -1)
	est := pf.Step(
		func(s cdpf.State, r *cdpf.RNG) cdpf.State { return s }, // static state
		func(c cdpf.State) float64 {
			d := c.Pos.Dist(z)
			return -0.5 * d * d // unit-variance Gaussian likelihood
		},
		rng,
	)
	fmt.Printf("estimate within 1 m of the measurement: %v\n", est.Pos.Dist(z) < 1)
	// Output:
	// estimate within 1 m of the measurement: true
}

// ExampleGossipAverage prices in-network aggregation: the same total weight
// CDPF obtains for free by overhearing costs gossip messages.
func ExampleGossipAverage() {
	nw, err := cdpf.NewNetwork(cdpf.DefaultNetworkConfig(20), cdpf.NewRNG(1))
	if err != nil {
		panic(err)
	}
	values := map[cdpf.NodeID]float64{}
	for i, id := range nw.ActiveNodesWithin(cdpf.V2(100, 100), 10) {
		values[id] = float64(i + 1)
		if len(values) == 8 {
			break
		}
	}
	res, err := cdpf.GossipAverage(nw, values, cdpf.GossipConfig{}, cdpf.NewRNG(2))
	if err != nil {
		panic(err)
	}
	fmt.Printf("aggregation needed radio messages: %v\n", res.Msgs > 0)
	// Output:
	// aggregation needed radio messages: true
}

// ExampleNewDutyCycle shows the scheduling substrate: a 25% duty cycle
// leaves about a quarter of the field awake at any instant.
func ExampleNewDutyCycle() {
	nw, err := cdpf.NewNetwork(cdpf.DefaultNetworkConfig(10), cdpf.NewRNG(5))
	if err != nil {
		panic(err)
	}
	dc, err := cdpf.NewDutyCycle(nw.Len(), 10, 0.25, cdpf.NewRNG(6))
	if err != nil {
		panic(err)
	}
	s := cdpf.NewScheduler(nw, dc)
	s.Apply(0)
	frac := float64(s.AwakeCount()) / float64(nw.Len())
	fmt.Printf("awake fraction near 25%%: %v\n", frac > 0.2 && frac < 0.3)
	// Output:
	// awake fraction near 25%: true
}
